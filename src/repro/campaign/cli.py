"""``python -m repro.campaign`` -- list / run / report.

Examples
--------
List every sweepable axis and built-in campaign::

    python -m repro.campaign list

``list`` prints seven tables, one per registry:

* **registered experiments** -- the auto-discovered E1-E10 drivers
  (:mod:`repro.campaign.registry`): id, short name, tags, the
  parameters ``run()`` accepts, title.
* **registered solvers** -- the named engine configurations
  (:mod:`repro.krylov.registry`): name, family, supported resilience
  policies, title.
* **registered fault models** -- the named declarative fault specs
  (:mod:`repro.reliability.registry`): name, compact spec string, the
  experiments exercising it, title.
* **registered preconditioners** -- the named preconditioner specs
  (:mod:`repro.precond`): name, compact spec string, the experiments
  exercising it, title.
* **registered precisions** -- the named precision specs
  (:mod:`repro.reliability.precision`): name, compact spec string, the
  experiments exercising it, title.
* **registered communicator backends** -- the backend axis
  (:mod:`repro.comm.registry`): name, whether reductions are
  ascending-rank ordered (bit-identical across such backends),
  availability in this environment, title.
* **built-in campaigns** -- name, scenario count, experiments covered.

Show the scenarios of a campaign::

    python -m repro.campaign list --campaign smoke

Run a built-in campaign (positional name or ``--campaign``)::

    python -m repro.campaign run precond
    python -m repro.campaign run --workers 2 --store campaign_results.jsonl

Run only the E1/E6 slice of the smoke campaign::

    python -m repro.campaign run --smoke --experiment E1 --experiment E6

Run under supervision -- per-scenario timeout, retry budget, chaos
injection into the runner's own workers -- then re-execute exactly the
failed/quarantined set::

    python -m repro.campaign run --smoke --timeout 30 --retries 5 \
        --chaos "worker_crash:p=0.3+worker_hang:p=0.1"
    python -m repro.campaign run --smoke --retry-failed

Render the aggregate report (including the failure history from the
ledger sidecar) of everything completed so far::

    python -m repro.campaign report --store campaign_results.jsonl

See CAMPAIGNS.md for the full manual.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.campaign.builtin import builtin_campaign, builtin_campaign_names
from repro.campaign.registry import default_registry
from repro.krylov.registry import default_solver_registry
from repro.precond import default_precond_registry
from repro.reliability.registry import default_fault_registry
from repro.campaign.executor import FailureLedger, RetryPolicy
from repro.campaign.report import render_report
from repro.campaign.runner import CampaignRunner, FAILED_STATUSES, ScenarioOutcome
from repro.campaign.spec import Scenario
from repro.campaign.store import ResultStore
from repro.utils.tables import Table

__all__ = ["main"]

DEFAULT_STORE = "campaign_results.jsonl"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Declarative scenario sweeps over the E1-E10 experiment drivers.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser(
        "list", help="list experiments, campaigns, or a campaign's scenarios"
    )
    list_cmd.add_argument(
        "--campaign", help="show the scenarios of this built-in campaign"
    )
    list_cmd.add_argument("--experiment", action="append", default=None,
                          help="filter by experiment id or name (repeatable)")
    list_cmd.add_argument("--tag", help="filter scenarios by tag")

    run_cmd = commands.add_parser("run", help="execute a campaign")
    run_cmd.add_argument(
        "campaign_name", nargs="?", default=None,
        help="built-in campaign to run (same as --campaign)",
    )
    run_cmd.add_argument(
        "--campaign", default=None,
        help=f"built-in campaign to run (default: 'default'; "
             f"known: {', '.join(builtin_campaign_names())})",
    )
    run_cmd.add_argument(
        "--smoke", action="store_true",
        help="shorthand for --campaign smoke",
    )
    run_cmd.add_argument("--experiment", action="append", default=None,
                         help="run only these experiments (repeatable)")
    run_cmd.add_argument("--tag", help="run only scenarios with this tag")
    run_cmd.add_argument("--workers", type=int, default=2,
                         help="worker processes (1 = in-process; default 2)")
    run_cmd.add_argument("--store", default=DEFAULT_STORE,
                         help=f"JSONL result store (default {DEFAULT_STORE})")
    run_cmd.add_argument("--no-store", action="store_true",
                         help="do not persist or memoize results")
    run_cmd.add_argument("--base-seed", type=int, default=2013,
                         help="root of per-scenario seed derivation")
    run_cmd.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                         help="per-scenario wall-clock budget; an expired "
                              "worker is killed and respawned")
    run_cmd.add_argument("--retries", type=int, default=3, metavar="N",
                         help="attempt budget per scenario, first try "
                              "included (default 3)")
    run_cmd.add_argument("--backoff", type=float, default=0.05, metavar="SECONDS",
                         help="delay before the second attempt, doubling "
                              "per retry (default 0.05)")
    run_cmd.add_argument("--chaos", default=None, metavar="SPEC",
                         help="inject faults into the runner's own workers, "
                              "e.g. 'worker_crash:p=0.1+worker_hang:p=0.05'")
    run_cmd.add_argument("--retry-failed", action="store_true",
                         help="run only the scenarios the ledger marks "
                              "failed/timeout/quarantined")
    run_cmd.add_argument("--no-ledger", action="store_true",
                         help="do not journal attempts to the failure ledger")
    run_cmd.add_argument("--batch", type=int, default=1, metavar="S",
                         help="group compatible pending scenarios (same "
                              "driver run_batch, same params except seed) "
                              "into lockstep batches of at most S, each "
                              "one supervised unit; 0 = unbounded group "
                              "size, 1 (default) = scenario-at-a-time")

    report_cmd = commands.add_parser("report", help="render the aggregate report")
    report_cmd.add_argument("--store", default=DEFAULT_STORE)
    report_cmd.add_argument("--ledger", default=None,
                            help="failure-ledger path (default: the store's "
                                 "'.ledger.jsonl' sidecar)")
    report_cmd.add_argument("--experiment", help="restrict to one experiment")
    report_cmd.add_argument("--tag", help="restrict to one tag")
    return parser


def _filter_scenarios(
    scenarios: List[Scenario],
    experiments: Optional[List[str]],
    tag: Optional[str],
) -> List[Scenario]:
    registry = default_registry()
    if experiments:
        wanted = {registry.get(e).experiment for e in experiments}
        scenarios = [s for s in scenarios if s.experiment in wanted]
    if tag:
        scenarios = [s for s in scenarios if s.tag == tag]
    return scenarios


def _cmd_list(args) -> int:
    if args.campaign:
        scenarios = _filter_scenarios(
            builtin_campaign(args.campaign), args.experiment, args.tag
        )
        table = Table(["key", "experiment", "tag", "overrides"],
                      title=f"campaign '{args.campaign}' ({len(scenarios)} scenarios)")
        for scenario in scenarios:
            table.add_row(scenario.key, scenario.experiment, scenario.tag or "-",
                          scenario.describe())
        print(table.render())
        return 0

    registry = default_registry()
    drivers = list(registry)
    if args.experiment:
        wanted = {registry.get(e).experiment for e in args.experiment}
        drivers = [d for d in drivers if d.experiment in wanted]
    table = Table(["experiment", "name", "tags", "parameters", "title"],
                  title=f"registered experiments ({len(drivers)})")
    for driver in drivers:
        table.add_row(
            driver.experiment,
            driver.name,
            ",".join(driver.spec.tags),
            ",".join(p for p in driver.accepted_params()),
            driver.spec.title,
        )
    print(table.render())
    print()
    solver_registry = default_solver_registry()
    solvers = Table(["solver", "family", "policies", "title"],
                    title=f"registered solvers ({len(solver_registry)})")
    for solver in solver_registry:
        solvers.add_row(
            solver.name, solver.family, ",".join(solver.policies), solver.title
        )
    print(solvers.render())
    print()
    fault_registry = default_fault_registry()
    faults = Table(["fault_model", "spec", "experiments", "title"],
                   title=f"registered fault models ({len(fault_registry)})")
    for entry in fault_registry:
        faults.add_row(
            entry.name, entry.spec.to_string(),
            ",".join(entry.experiments), entry.title,
        )
    print(faults.render())
    print()
    precond_registry = default_precond_registry()
    preconds = Table(["precond", "spec", "experiments", "title"],
                     title=f"registered preconditioners ({len(precond_registry)})")
    for entry in precond_registry:
        preconds.add_row(
            entry.name, entry.spec.to_string(),
            ",".join(entry.experiments), entry.title,
        )
    print(preconds.render())
    print()
    from repro.reliability.precision import default_precision_registry

    precision_registry = default_precision_registry()
    precisions = Table(["precision", "spec", "experiments", "title"],
                       title=f"registered precisions ({len(precision_registry)})")
    for entry in precision_registry:
        precisions.add_row(
            entry.name, entry.spec.to_string(),
            ",".join(entry.experiments), entry.title,
        )
    print(precisions.render())
    print()
    from repro.comm.registry import default_backend_registry

    backend_registry = default_backend_registry()
    backends = Table(["backend", "ordered_reduction", "available", "title"],
                     title=f"registered communicator backends ({len(backend_registry)})")
    for entry in backend_registry:
        ok, reason = entry.available()
        backends.add_row(
            entry.name, entry.ordered_reduction,
            "yes" if ok else f"no ({reason})", entry.title,
        )
    print(backends.render())
    print()
    campaigns = Table(["campaign", "scenarios", "experiments"],
                      title="built-in campaigns")
    for name in builtin_campaign_names():
        scenarios = builtin_campaign(name)
        campaigns.add_row(
            name, len(scenarios),
            ",".join(sorted({s.experiment for s in scenarios})),
        )
    print(campaigns.render())
    return 0


def _cmd_run(args) -> int:
    # The positional form and the --campaign flag are synonyms; naming
    # two different campaigns is ambiguous, not a precedence question.
    requested = [
        name for name in (args.campaign_name, args.campaign,
                          "smoke" if args.smoke else None)
        if name is not None
    ]
    if len(set(requested)) > 1:
        print(
            f"conflicting campaign selections: {', '.join(sorted(set(requested)))} "
            f"-- give one of the positional name, --campaign or --smoke",
            file=sys.stderr,
        )
        return 2
    campaign = requested[0] if requested else "default"
    scenarios = _filter_scenarios(
        builtin_campaign(campaign), args.experiment, args.tag
    )
    if not scenarios:
        print("nothing to run (filters matched no scenarios)", file=sys.stderr)
        return 2
    store = None if args.no_store else ResultStore(args.store)

    def progress(outcome: ScenarioOutcome) -> None:
        marker = {
            "completed": "ran", "cached": "skip", "failed": "FAIL",
            "timeout": "TIME", "quarantined": "QUAR",
        }[outcome.status]
        retries = f" x{outcome.attempts}" if outcome.attempts > 1 else ""
        print(f"[{marker:>4}] {outcome.key}  {outcome.scenario.experiment:<3} "
              f"{outcome.scenario.describe()}  ({outcome.elapsed:.2f}s{retries})")
        if outcome.error:
            print(outcome.error, file=sys.stderr)

    runner = CampaignRunner(
        store,
        workers=args.workers,
        base_seed=args.base_seed,
        progress=progress,
        timeout=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries, backoff=args.backoff),
        chaos=args.chaos,
        ledger=False if args.no_ledger else None,
        batch=args.batch,
    )

    if args.retry_failed:
        # Re-target exactly the failed/quarantined set the ledger
        # recorded: resolved keys whose latest terminal outcome is a
        # failure and that never made it into the store.  Nothing
        # cached is re-run -- the store stays authoritative.
        if runner.ledger is None:
            print("--retry-failed needs a ledger (drop --no-ledger/--no-store)",
                  file=sys.stderr)
            return 2
        failed_keys = set(runner.ledger.failed_keys())
        if store is not None:
            failed_keys -= set(store.keys())
        scenarios = [s for s in scenarios if runner.resolve(s).key in failed_keys]
        if not scenarios:
            print("nothing to retry: the ledger records no failed/quarantined "
                  "scenarios for this campaign")
            return 0

    outcomes = runner.run(scenarios)
    ran = sum(o.status == "completed" for o in outcomes)
    cached = sum(o.status == "cached" for o in outcomes)
    failed = sum(o.status in FAILED_STATUSES for o in outcomes)
    retried = sum(o.attempts > 1 for o in outcomes)
    experiments = sorted({o.scenario.experiment for o in outcomes})
    print(
        f"\ncampaign '{campaign}': {len(outcomes)} scenarios over "
        f"{len(experiments)} experiments ({', '.join(experiments)}) -- "
        f"{ran} ran, {cached} cached, {failed} failed"
        + (f", {retried} retried" if retried else "")
        + (f"; store: {store.path}" if store is not None else "")
    )
    return 1 if failed else 0


def _cmd_report(args) -> int:
    store = ResultStore(args.store)
    ledger_path = args.ledger or FailureLedger.path_for(args.store)
    ledger = FailureLedger(ledger_path) if os.path.exists(ledger_path) else None
    print(render_report(store, experiment=args.experiment, tag=args.tag,
                        ledger=ledger))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_report(args)
