"""JSONL result store for completed scenarios.

One line per completed scenario::

    {"key": "5f1c...", "experiment": "E1", "tag": "smoke",
     "params": {...}, "elapsed": 0.42, "result": {<ExperimentResult>}}

Appending is atomic at line granularity, so a crashed campaign leaves a
valid store behind and a re-run resumes exactly where it stopped (the
runner skips every key already present).  Loading tolerates trailing
partial lines (a run killed mid-write) by discarding them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.experiments.common import ExperimentResult
from repro.utils.serialization import jsonify

__all__ = ["StoreRecord", "ResultStore"]


@dataclass(frozen=True)
class StoreRecord:
    """A completed scenario as persisted in the store."""

    key: str
    experiment: str
    tag: str
    params: Mapping[str, Any]
    elapsed: float
    result: dict

    def experiment_result(self) -> ExperimentResult:
        """Deserialize the stored :class:`ExperimentResult`."""
        return ExperimentResult.from_dict(self.result)

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "experiment": self.experiment,
                "tag": self.tag,
                "params": jsonify(self.params),
                "elapsed": self.elapsed,
                "result": self.result,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "StoreRecord":
        data = json.loads(line)
        return cls(
            key=data["key"],
            experiment=data["experiment"],
            tag=data.get("tag", ""),
            params=data.get("params", {}),
            elapsed=float(data.get("elapsed", 0.0)),
            result=data["result"],
        )


class ResultStore:
    """Append-only JSONL store of completed scenarios, indexed by key."""

    def __init__(self, path: str):
        self.path = str(path)
        self._records: Dict[str, StoreRecord] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = StoreRecord.from_json(line)
                except (json.JSONDecodeError, KeyError):
                    # Partial trailing line from an interrupted run.
                    continue
                self._records[record.key] = record

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> List[str]:
        return list(self._records)

    def get(self, key: str) -> Optional[StoreRecord]:
        return self._records.get(key)

    def records(self) -> Iterator[StoreRecord]:
        """All records, in insertion (file) order."""
        return iter(list(self._records.values()))

    # ------------------------------------------------------------------
    def append(
        self,
        key: str,
        *,
        experiment: str,
        tag: str,
        params: Mapping[str, Any],
        result: ExperimentResult,
        elapsed: float = 0.0,
    ) -> StoreRecord:
        """Persist one completed scenario and index it.

        Re-appending an existing key is a no-op returning the stored
        record -- the store is idempotent by construction.
        """
        if key in self._records:
            return self._records[key]
        record = StoreRecord(
            key=key,
            experiment=experiment,
            tag=tag,
            params=jsonify(params),
            elapsed=float(elapsed),
            result=result.to_dict() if isinstance(result, ExperimentResult) else result,
        )
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
        self._records[key] = record
        return record
