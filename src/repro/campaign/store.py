"""JSONL result store for completed scenarios.

One line per completed scenario::

    {"key": "5f1c...", "experiment": "E1", "tag": "smoke",
     "params": {...}, "elapsed": 0.42, "result": {<ExperimentResult>}}

Appending is atomic at line granularity, so a crashed campaign leaves a
valid store behind and a re-run resumes exactly where it stopped (the
runner skips every key already present).  Loading tolerates trailing
partial lines (a run killed mid-write) by discarding them.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.utils.serialization import jsonify

__all__ = ["StoreRecord", "ResultStore", "StoreVerification"]


@dataclass(frozen=True)
class StoreRecord:
    """A completed scenario as persisted in the store."""

    key: str
    experiment: str
    tag: str
    params: Mapping[str, Any]
    elapsed: float
    result: dict

    def experiment_result(self) -> ExperimentResult:
        """Deserialize the stored :class:`ExperimentResult`."""
        return ExperimentResult.from_dict(self.result)

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "experiment": self.experiment,
                "tag": self.tag,
                "params": jsonify(self.params),
                "elapsed": self.elapsed,
                "result": self.result,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "StoreRecord":
        data = json.loads(line)
        return cls(
            key=data["key"],
            experiment=data["experiment"],
            tag=data.get("tag", ""),
            params=data.get("params", {}),
            elapsed=float(data.get("elapsed", 0.0)),
            result=data["result"],
        )


@dataclass(frozen=True)
class StoreVerification:
    """Line-level health report of a store file (see ``ResultStore.verify``).

    ``dropped`` holds the 1-based numbers of corrupt *mid-file* lines
    (real data loss: something after them parsed, so they are not an
    interrupted final write).  ``trailing_partial`` flags a corrupt
    final line, the benign signature of a run killed mid-append.
    """

    path: str
    total_lines: int = 0
    loaded: int = 0
    dropped: Tuple[int, ...] = field(default_factory=tuple)
    trailing_partial: bool = False

    @property
    def ok(self) -> bool:
        """True when no mid-file line was dropped."""
        return not self.dropped

    def describe(self) -> str:
        if self.total_lines == 0:
            return f"{self.path}: empty store"
        parts = [
            f"{self.path}: {self.loaded} of {self.total_lines} lines loaded"
        ]
        if self.dropped:
            numbers = ", ".join(str(n) for n in self.dropped)
            parts.append(
                f"{len(self.dropped)} corrupt mid-file line(s) dropped "
                f"(line {numbers})"
            )
        if self.trailing_partial:
            parts.append("trailing partial line discarded (interrupted write)")
        return "; ".join(parts)


class ResultStore:
    """Append-only JSONL store of completed scenarios, indexed by key."""

    def __init__(self, path: str):
        self.path = str(path)
        self._records: Dict[str, StoreRecord] = {}
        self._load()

    # ------------------------------------------------------------------
    @staticmethod
    def _scan(path: str):
        """Parse a store file; yields ``(line_number, record_or_None)``.

        ``None`` marks an unparsable non-empty line.  Shared by
        :meth:`_load` and :meth:`verify` so both agree on what counts
        as corrupt.
        """
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield number, StoreRecord.from_json(line)
                except (json.JSONDecodeError, KeyError):
                    yield number, None

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        corrupt: List[int] = []
        last_number = 0
        for number, record in self._scan(self.path):
            last_number = number
            if record is None:
                corrupt.append(number)
            else:
                self._records[record.key] = record
        # A corrupt final line is the benign signature of a run killed
        # mid-append; anything corrupt before it is silent data loss
        # and deserves a warning naming the lines.
        if corrupt and corrupt[-1] == last_number:
            corrupt = corrupt[:-1]
        if corrupt:
            numbers = ", ".join(str(n) for n in corrupt)
            warnings.warn(
                f"{self.path}: dropped {len(corrupt)} corrupt mid-file "
                f"JSONL line(s) (line {numbers}); run "
                "ResultStore.verify() for details",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    def verify(self) -> StoreVerification:
        """Re-scan the store file and report dropped/total lines."""
        if not os.path.exists(self.path):
            return StoreVerification(path=self.path)
        total = 0
        loaded = 0
        corrupt: List[int] = []
        last_number = 0
        for number, record in self._scan(self.path):
            total += 1
            last_number = number
            if record is None:
                corrupt.append(number)
            else:
                loaded += 1
        trailing = bool(corrupt) and corrupt[-1] == last_number
        if trailing:
            corrupt = corrupt[:-1]
        return StoreVerification(
            path=self.path,
            total_lines=total,
            loaded=loaded,
            dropped=tuple(corrupt),
            trailing_partial=trailing,
        )

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> List[str]:
        return list(self._records)

    def get(self, key: str) -> Optional[StoreRecord]:
        return self._records.get(key)

    def records(self) -> Iterator[StoreRecord]:
        """All records, in insertion (file) order."""
        return iter(list(self._records.values()))

    # ------------------------------------------------------------------
    def append(
        self,
        key: str,
        *,
        experiment: str,
        tag: str,
        params: Mapping[str, Any],
        result: ExperimentResult,
        elapsed: float = 0.0,
    ) -> StoreRecord:
        """Persist one completed scenario and index it.

        Re-appending an existing key is a no-op returning the stored
        record -- the store is idempotent by construction.
        """
        if key in self._records:
            return self._records[key]
        record = StoreRecord(
            key=key,
            experiment=experiment,
            tag=tag,
            params=jsonify(params),
            elapsed=float(elapsed),
            result=result.to_dict() if isinstance(result, ExperimentResult) else result,
        )
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
        self._records[key] = record
        return record
