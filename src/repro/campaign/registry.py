"""Auto-discovering registry of experiment drivers.

The registry scans :mod:`repro.experiments` for modules implementing
the driver protocol -- a module-level
:class:`~repro.experiments.common.ExperimentSpec` named ``SPEC`` plus a
``run(**params) -> ExperimentResult`` callable -- and indexes them by
experiment id ("E1") and short name ("sdc_detection"), both
case-insensitive.  Everything the campaign layer knows about an
experiment flows through here; nothing is hard-wired to seven drivers,
so an ``e8_*.py`` module that implements the protocol is swept
automatically.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.experiments import iter_driver_modules
from repro.experiments.common import ExperimentResult, ExperimentSpec

__all__ = ["RegisteredExperiment", "ExperimentRegistry", "default_registry"]


@dataclass(frozen=True)
class RegisteredExperiment:
    """One discovered driver: its spec, module and ``run`` callable.

    ``run_batch``, when the driver module provides it, runs several
    compatible scenarios (same parameters except ``seed``) in lockstep:
    ``run_batch(params_list) -> List[ExperimentResult]``, bit-identical
    to per-scenario ``run()`` calls.  The campaign runner's batch mode
    groups scenarios onto it; drivers without one always run
    scenario-at-a-time.
    """

    spec: ExperimentSpec
    module: str
    run: Callable[..., ExperimentResult]
    run_batch: Optional[Callable[..., List[ExperimentResult]]] = None

    @property
    def supports_batch(self) -> bool:
        return self.run_batch is not None

    @property
    def experiment(self) -> str:
        return self.spec.experiment

    @property
    def name(self) -> str:
        return self.spec.name

    def accepted_params(self) -> List[str]:
        """Names of the keyword parameters ``run()`` accepts."""
        signature = inspect.signature(self.run)
        return [
            p.name
            for p in signature.parameters.values()
            if p.kind in (p.KEYWORD_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]

    def accepts(self, param: str) -> bool:
        return param in self.accepted_params()

    def validate_params(self, params: Mapping[str, object]) -> None:
        """Raise ``ValueError`` on parameters ``run()`` does not accept."""
        unknown = sorted(set(params) - set(self.accepted_params()))
        if unknown:
            raise ValueError(
                f"{self.experiment} ({self.name}) does not accept parameters "
                f"{unknown}; accepted: {self.accepted_params()}"
            )


class ExperimentRegistry:
    """Index of discovered drivers, keyed by id and by short name."""

    def __init__(self, drivers: Optional[List[RegisteredExperiment]] = None):
        if drivers is None:
            drivers = [
                RegisteredExperiment(
                    spec=module.SPEC,
                    module=module.__name__,
                    run=module.run,
                    run_batch=getattr(module, "run_batch", None),
                )
                for module in iter_driver_modules()
            ]
        self._by_key: Dict[str, RegisteredExperiment] = {}
        self._drivers: List[RegisteredExperiment] = []
        for driver in drivers:
            self.add(driver)

    def add(self, driver: RegisteredExperiment) -> None:
        """Register a driver under its experiment id and short name."""
        for key in (driver.experiment.lower(), driver.name.lower()):
            existing = self._by_key.get(key)
            if existing is not None and existing.module != driver.module:
                raise ValueError(
                    f"duplicate experiment key {key!r}: "
                    f"{existing.module} vs {driver.module}"
                )
            self._by_key[key] = driver
        self._drivers.append(driver)
        self._drivers.sort(key=lambda d: d.experiment)

    def get(self, key: str) -> RegisteredExperiment:
        """Look up by id ("E1") or name ("sdc_detection"), any case."""
        try:
            return self._by_key[key.lower()]
        except KeyError:
            known = ", ".join(d.experiment for d in self._drivers)
            raise KeyError(f"unknown experiment {key!r} (known: {known})") from None

    def __contains__(self, key: str) -> bool:
        return key.lower() in self._by_key

    def __iter__(self):
        return iter(self._drivers)

    def __len__(self) -> int:
        return len(self._drivers)

    def experiments(self) -> List[str]:
        """Sorted experiment ids ("E1" ... )."""
        return [d.experiment for d in self._drivers]


_DEFAULT: Optional[ExperimentRegistry] = None


def default_registry() -> ExperimentRegistry:
    """The process-wide registry over :mod:`repro.experiments`."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExperimentRegistry()
    return _DEFAULT
