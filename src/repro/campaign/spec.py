"""Declarative scenario specifications and sweep expansion.

A :class:`Scenario` is one run of one experiment driver: the experiment
identifier plus keyword-parameter overrides for its ``run()``.  A
:class:`Sweep` expands to many scenarios, either as a cartesian
*grid* over parameter axes or by *zipping* axes of equal length.

Every scenario has a stable content-derived key
(:func:`scenario_key`): the SHA-256 of its canonical JSON.  The key is
what the result store memoizes on -- re-running a campaign skips every
scenario whose key is already present -- and what the runner derives
per-scenario RNG seeds from, so parallel and sequential execution see
identical randomness.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.utils.serialization import jsonify
from repro.utils.tables import one_line

__all__ = [
    "Scenario",
    "Sweep",
    "grid_sweep",
    "zip_sweep",
    "scenario_key",
    "canonical_json",
]


def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, compact) JSON text of ``value``.

    Scenario keys hash this form, and the supervised executor
    (:mod:`repro.campaign.executor`) checksums result payloads with it
    to detect corruption in transit from a worker.
    """
    return json.dumps(jsonify(value), sort_keys=True, separators=(",", ":"))


def scenario_key(experiment: str, params: Mapping[str, Any]) -> str:
    """Stable 16-hex-digit key of ``(experiment, params)``.

    Independent of parameter insertion order, of the Python process
    (no ``hash()`` involved), and of container flavour (tuples and
    lists of the same values produce the same key).
    """
    payload = canonical_json({"experiment": experiment.upper(), "params": params})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Scenario:
    """One experiment run: driver id plus parameter overrides.

    Attributes
    ----------
    experiment:
        Canonical experiment id ("E1" ... "E7"); matched
        case-insensitively against the registry.
    params:
        Keyword overrides passed to the driver's ``run()``.  Parameters
        not listed keep the driver's defaults.
    tag:
        Free-form label (usually the sweep/campaign name) used for
        filtering in the CLI and the report.
    """

    experiment: str
    params: Mapping[str, Any] = field(default_factory=dict)
    tag: str = ""

    def __post_init__(self):
        # Freeze the mapping so scenarios are safely hashable-by-key
        # and cannot drift after their key has been computed.
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "experiment", self.experiment.upper())

    @property
    def key(self) -> str:
        """Stable content key (see :func:`scenario_key`)."""
        return scenario_key(self.experiment, self.params)

    def with_params(self, **overrides: Any) -> "Scenario":
        """Return a copy with ``overrides`` merged into the params."""
        merged = dict(self.params)
        merged.update(overrides)
        return Scenario(self.experiment, merged, self.tag)

    def describe(self, max_width: int = 60) -> str:
        """One-line ``k=v`` digest of the overrides, for listings."""
        text = one_line(
            ", ".join(f"{k}={v}" for k, v in sorted(self.params.items())),
            max_width,
        )
        return text or "(driver defaults)"


@dataclass(frozen=True)
class Sweep:
    """A declarative family of scenarios for one experiment.

    Attributes
    ----------
    experiment:
        Experiment id the scenarios target.
    axes:
        Mapping ``param -> sequence of values``.  ``mode="grid"``
        takes the cartesian product of all axes; ``mode="zip"`` pairs
        the i-th value of every axis (all axes must then have equal
        length).
    base:
        Overrides shared by every expanded scenario (axis values win
        on conflict).
    mode:
        ``"grid"`` or ``"zip"``.
    tag:
        Label stamped on every expanded scenario.

    Examples
    --------
    >>> sweep = Sweep("E7", axes={"node_mtbf_years": (1.0, 5.0),
    ...                           "checkpoint_time": (60.0, 300.0)})
    >>> len(sweep.expand())
    4
    """

    experiment: str
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    mode: str = "grid"
    tag: str = ""

    def __post_init__(self):
        if self.mode not in ("grid", "zip"):
            raise ValueError(f"mode must be 'grid' or 'zip', got {self.mode!r}")
        object.__setattr__(self, "axes", {k: list(v) for k, v in self.axes.items()})
        object.__setattr__(self, "base", dict(self.base))
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        if self.mode == "zip" and self.axes:
            lengths = {len(v) for v in self.axes.values()}
            if len(lengths) > 1:
                raise ValueError(
                    f"zip sweep axes must have equal lengths, got {sorted(lengths)}"
                )

    def __len__(self) -> int:
        if not self.axes:
            return 1
        if self.mode == "zip":
            return len(next(iter(self.axes.values())))
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def expand(self) -> List[Scenario]:
        """Materialize the scenarios, in deterministic axis order."""
        names = sorted(self.axes)
        if not names:
            return [Scenario(self.experiment, self.base, self.tag)]
        if self.mode == "zip":
            combos: Iterator[Tuple[Any, ...]] = zip(*(self.axes[n] for n in names))
        else:
            combos = itertools.product(*(self.axes[n] for n in names))
        scenarios = []
        for combo in combos:
            params = dict(self.base)
            params.update(zip(names, combo))
            scenarios.append(Scenario(self.experiment, params, self.tag))
        return scenarios


def grid_sweep(
    experiment: str,
    base: Optional[Mapping[str, Any]] = None,
    tag: str = "",
    **axes: Sequence[Any],
) -> List[Scenario]:
    """Expand a cartesian-product sweep (convenience for :class:`Sweep`)."""
    return Sweep(experiment, axes=axes, base=base or {}, mode="grid", tag=tag).expand()


def zip_sweep(
    experiment: str,
    base: Optional[Mapping[str, Any]] = None,
    tag: str = "",
    **axes: Sequence[Any],
) -> List[Scenario]:
    """Expand a zipped sweep (i-th value of every axis paired together)."""
    return Sweep(experiment, axes=axes, base=base or {}, mode="zip", tag=tag).expand()
