"""Aggregate reporting over the campaign result store.

Two views:

* a per-experiment rollup (scenario counts, table rows, wall time), and
* a per-scenario listing (key, tag, parameter digest, headline).

The *headline* of a scenario is a compact digest of its result
summary: the first few scalar entries, which for every E1-E7 driver
carry the qualitative claim (detection rates, speedups, efficiency
gaps).  Full tables stay available via ``StoreRecord.experiment_result()``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.campaign.store import ResultStore, StoreRecord
from repro.utils.tables import Table, one_line

__all__ = ["rollup_table", "scenario_table", "render_report"]

_HEADLINE_ENTRIES = 3
_HEADLINE_WIDTH = 64


def _headline(record: StoreRecord) -> str:
    """First few scalar summary entries of a stored result."""
    summary = record.result.get("summary", {})
    parts = []
    for key in sorted(summary):
        value = summary[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        parts.append(f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}")
        if len(parts) >= _HEADLINE_ENTRIES:
            break
    text = ", ".join(parts)
    if len(text) > _HEADLINE_WIDTH:
        text = text[: _HEADLINE_WIDTH - 3] + "..."
    return text


def _params_digest(record: StoreRecord, max_width: int = 48) -> str:
    return one_line(
        ", ".join(f"{k}={v}" for k, v in sorted(record.params.items())), max_width
    )


def _select(
    records: Iterable[StoreRecord],
    experiment: Optional[str] = None,
    tag: Optional[str] = None,
) -> List[StoreRecord]:
    selected = []
    for record in records:
        if experiment and record.experiment.lower() != experiment.lower():
            continue
        if tag and record.tag != tag:
            continue
        selected.append(record)
    return selected


def rollup_table(records: Iterable[StoreRecord]) -> Table:
    """One row per experiment: scenario count, rows, wall time."""
    by_experiment = {}
    for record in records:
        by_experiment.setdefault(record.experiment, []).append(record)
    table = Table(
        ["experiment", "scenarios", "tags", "table_rows", "total_elapsed_s"],
        title="campaign rollup",
    )
    for experiment in sorted(by_experiment):
        group = by_experiment[experiment]
        tags = sorted({r.tag for r in group if r.tag})
        rows = sum(len(r.result.get("table", {}).get("rows", [])) for r in group)
        elapsed = sum(r.elapsed for r in group)
        table.add_row(experiment, len(group), ",".join(tags) or "-", rows, elapsed)
    return table


def scenario_table(records: Iterable[StoreRecord]) -> Table:
    """One row per stored scenario."""
    table = Table(
        ["key", "experiment", "tag", "params", "elapsed_s", "headline"],
        title="completed scenarios",
    )
    for record in records:
        table.add_row(
            record.key,
            record.experiment,
            record.tag or "-",
            _params_digest(record),
            record.elapsed,
            _headline(record) or "-",
        )
    return table


def render_report(
    store: ResultStore,
    *,
    experiment: Optional[str] = None,
    tag: Optional[str] = None,
) -> str:
    """Render the rollup + scenario listing for (a slice of) a store."""
    records = _select(store.records(), experiment=experiment, tag=tag)
    if not records:
        return f"no completed scenarios in {store.path}" + (
            f" matching experiment={experiment!r} tag={tag!r}"
            if experiment or tag else ""
        )
    lines = [
        f"store: {store.path} ({len(records)} of {len(store)} scenarios shown)",
        "",
        rollup_table(records).render(),
        "",
        scenario_table(records).render(),
    ]
    return "\n".join(lines)
