"""Aggregate reporting over the campaign result store and ledger.

Three views:

* a per-experiment rollup (scenario counts, table rows, wall time),
* a per-scenario listing (key, tag, parameter digest, headline), and
* a failure-history listing from the
  :class:`~repro.campaign.executor.FailureLedger` sidecar: every
  scenario that ever crashed, hung, corrupted a result, raised, or
  needed a retry, with its attempt-by-attempt status trail.

The *headline* of a scenario is a compact digest of its result
summary: the first few scalar entries, which for every E1-E9 driver
carry the qualitative claim (detection rates, speedups, efficiency
gaps).  Full tables stay available via ``StoreRecord.experiment_result()``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.campaign.executor import FailureLedger
from repro.campaign.store import ResultStore, StoreRecord
from repro.utils.tables import Table, one_line

__all__ = [
    "rollup_table",
    "scenario_table",
    "failure_table",
    "render_report",
]

_HEADLINE_ENTRIES = 3
_HEADLINE_WIDTH = 64


def _headline(record: StoreRecord) -> str:
    """First few scalar summary entries of a stored result."""
    summary = record.result.get("summary", {})
    parts = []
    for key in sorted(summary):
        value = summary[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        parts.append(f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}")
        if len(parts) >= _HEADLINE_ENTRIES:
            break
    text = ", ".join(parts)
    if len(text) > _HEADLINE_WIDTH:
        text = text[: _HEADLINE_WIDTH - 3] + "..."
    return text


def _params_digest(record: StoreRecord, max_width: int = 48) -> str:
    return one_line(
        ", ".join(f"{k}={v}" for k, v in sorted(record.params.items())), max_width
    )


def _select(
    records: Iterable[StoreRecord],
    experiment: Optional[str] = None,
    tag: Optional[str] = None,
) -> List[StoreRecord]:
    selected = []
    for record in records:
        if experiment and record.experiment.lower() != experiment.lower():
            continue
        if tag and record.tag != tag:
            continue
        selected.append(record)
    return selected


def rollup_table(records: Iterable[StoreRecord]) -> Table:
    """One row per experiment: scenario count, rows, wall time."""
    by_experiment = {}
    for record in records:
        by_experiment.setdefault(record.experiment, []).append(record)
    table = Table(
        ["experiment", "scenarios", "tags", "table_rows", "total_elapsed_s"],
        title="campaign rollup",
    )
    for experiment in sorted(by_experiment):
        group = by_experiment[experiment]
        tags = sorted({r.tag for r in group if r.tag})
        rows = sum(len(r.result.get("table", {}).get("rows", [])) for r in group)
        elapsed = sum(r.elapsed for r in group)
        table.add_row(experiment, len(group), ",".join(tags) or "-", rows, elapsed)
    return table


def scenario_table(records: Iterable[StoreRecord]) -> Table:
    """One row per stored scenario."""
    table = Table(
        ["key", "experiment", "tag", "params", "elapsed_s", "headline"],
        title="completed scenarios",
    )
    for record in records:
        table.add_row(
            record.key,
            record.experiment,
            record.tag or "-",
            _params_digest(record),
            record.elapsed,
            _headline(record) or "-",
        )
    return table


def failure_table(
    ledger: FailureLedger, experiment: Optional[str] = None
) -> Optional[Table]:
    """Failure history from the ledger: one row per troubled scenario.

    Scenarios whose only record is a clean first-try success are
    omitted -- the table is the *failure* history.  Returns ``None``
    when there is nothing to show.
    """
    rows = []
    for key, attempts in ledger.history().items():
        if experiment and attempts[0].experiment.lower() != experiment.lower():
            continue
        outcome = next(
            (r.outcome for r in reversed(attempts) if r.outcome is not None),
            "in-flight",
        )
        clean = len(attempts) == 1 and attempts[0].status == "ok"
        if clean:
            continue
        trail = ">".join(r.status for r in attempts)
        last_error = next(
            (r.error for r in reversed(attempts) if r.error), ""
        )
        rows.append(
            (
                key,
                attempts[0].experiment,
                len(attempts),
                trail,
                outcome,
                one_line(last_error.strip().splitlines()[-1] if last_error else "-", 48),
            )
        )
    if not rows:
        return None
    table = Table(
        ["key", "experiment", "attempts", "history", "outcome", "last_error"],
        title="failure history",
    )
    for row in rows:
        table.add_row(*row)
    return table


def render_report(
    store: ResultStore,
    *,
    experiment: Optional[str] = None,
    tag: Optional[str] = None,
    ledger: Optional[FailureLedger] = None,
) -> str:
    """Render rollup + scenario listing (+ failure history) for a store."""
    records = _select(store.records(), experiment=experiment, tag=tag)
    failures = failure_table(ledger, experiment) if ledger is not None else None
    if not records and failures is None:
        return f"no completed scenarios in {store.path}" + (
            f" matching experiment={experiment!r} tag={tag!r}"
            if experiment or tag else ""
        )
    lines = [
        f"store: {store.path} ({len(records)} of {len(store)} scenarios shown)",
    ]
    if records:
        lines += ["", rollup_table(records).render(),
                  "", scenario_table(records).render()]
    if failures is not None:
        lines += [
            "",
            f"ledger: {ledger.path} ({len(ledger)} attempt records)",
            "",
            failures.render(),
        ]
    return "\n".join(lines)
