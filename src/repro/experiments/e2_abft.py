"""E2 -- Checksum-based ABFT detection and correction.

Paper claim (§III-A): the checksum metadata of classic ABFT (Huang &
Abraham) detects anomalous behaviour, and for single errors can correct
it, at low overhead.

Procedure: corrupt one element of the result of a dense matrix product
(and, separately, a sparse matrix-vector product) with a random bit
flip, sweep the problem size, and report detection rate, correction
rate and the relative cost of maintaining and verifying the checksums.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.linalg.checksum import checked_matmul, checked_matvec
from repro.linalg.matgen import poisson_2d
from repro.reliability.bitflip import flip_bit_array
from repro.reliability.registry import resolve_faults
from repro.utils.rng import RngFactory
from repro.utils.tables import Table

__all__ = ["run", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E2",
    name="abft",
    title="Checksum-based ABFT detection and correction",
    tags=("abft", "checksum", "faults"),
    smoke={"sizes": (8,), "n_trials": 5},
    golden={"sizes": (8, 16), "n_trials": 6, "seed": 2013},
)


def run(
    *,
    sizes=(16, 32, 64),
    n_trials: int = 30,
    faults=None,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E2 and return its table.

    ``faults`` selects the corruption model the checksums must catch
    (reliability-registry name, compact spec string or dict): bit-flip
    components inject flips bounded by their ``bits`` range, value
    perturbations overwrite/scale the victim element.  ``None`` keeps
    the legacy-equivalent any-significant-bit flip (bits 20..62); specs
    with no soft-fault component probe false positives only.
    """
    fault_model = resolve_faults(faults) if faults is not None else None
    # Only the soft-fault component corrupts kernel results; specs
    # without one (e.g. pure proc_fail) probe false positives only.
    soft_model = fault_model.soft_component() if fault_model is not None else None
    inject = fault_model is None or soft_model is not None
    perturb = soft_model is not None and soft_model.kind == "perturb"
    if soft_model is not None:
        # An explicit model means what it says: unbounded bit-flip
        # models flip any bit (0..63); only the legacy default keeps
        # the historical skip-the-lowest-mantissa-bits range.
        bits_lo, bits_hi = soft_model.bits if soft_model.bits is not None else (0, 63)
    else:
        bits_lo, bits_hi = 20, 62

    def corrupt_element(array, flat_index, bit):
        """Corrupt one element the way the fault model prescribes."""
        if perturb:
            out = array.copy()
            flat = out.reshape(-1)
            value = soft_model.spec.get("value")
            flat[flat_index] = (
                float(value) if value is not None
                else flat[flat_index] * float(soft_model.spec.get("scale"))
            )
            return out
        return flip_bit_array(array, flat_index, bit)

    factory = RngFactory(seed)
    table = Table(
        [
            "kernel",
            "n",
            "detection_rate",
            "correction_rate",
            "false_positive_rate",
            "checksum_overhead",
        ],
        title="E2: Huang-Abraham checksum ABFT",
    )
    summary = {}

    for n in sizes:
        rng = factory.spawn(f"matmul-{n}")
        a = rng.standard_normal((n, n))
        bmat = rng.standard_normal((n, n))
        detected = corrected = false_pos = 0
        for _ in range(n_trials):
            i = int(rng.integers(0, n))
            j = int(rng.integers(0, n))
            # Default bits 20..62 skip the lowest mantissa bits.
            bit = int(rng.integers(bits_lo, bits_hi + 1))

            def corrupt(c, _i=i, _j=j, _bit=bit):
                flat = int(np.ravel_multi_index((_i, _j), c.shape))
                return corrupt_element(c, flat, _bit)

            product, report = checked_matmul(
                a, bmat, corrupt=corrupt if inject else None, correct=True
            )
            if report.corrected:
                corrected += 1
                detected += 1
            elif not report.ok:
                detected += 1
            # Clean run (false-positive probe).
            _, clean_report = checked_matmul(a, bmat, correct=False)
            if not clean_report.ok:
                false_pos += 1
        # Overhead: checksum construction + verification is O(n^2) against
        # the O(n^3) product.
        overhead = (4.0 * n * n) / (2.0 * n**3)
        table.add_row(
            "matmul", n, detected / n_trials, corrected / n_trials,
            false_pos / n_trials, overhead,
        )
        summary[f"matmul_{n}_detection"] = detected / n_trials
        summary[f"matmul_{n}_correction"] = corrected / n_trials

    for grid in (12, 20):
        matrix = poisson_2d(grid)
        n = matrix.n_rows
        rng = factory.spawn(f"matvec-{grid}")
        x = rng.standard_normal(n)
        detected = false_pos = 0
        for _ in range(n_trials):
            index = int(rng.integers(0, n))
            bit = int(rng.integers(bits_lo, bits_hi + 1))

            def corrupt(y, _index=index, _bit=bit):
                return corrupt_element(y, _index, _bit)

            _, ok = checked_matvec(matrix, x, corrupt=corrupt if inject else None)
            if not ok:
                detected += 1
            _, clean_ok = checked_matvec(matrix, x)
            if not clean_ok:
                false_pos += 1
        overhead = (2.0 * n) / (2.0 * matrix.nnz)
        table.add_row(
            "spmv", n, detected / n_trials, 0.0, false_pos / n_trials, overhead
        )
        summary[f"spmv_{n}_detection"] = detected / n_trials
    return ExperimentResult(
        experiment="E2",
        claim=(
            "Checksum metadata detects corrupted results of matrix operations and "
            "corrects single errors, at a cost that vanishes relative to the kernel."
        ),
        table=table,
        summary=summary,
        parameters={
            "sizes": tuple(sizes),
            "n_trials": n_trials,
            "seed": seed,
            **({"faults": fault_model.describe()} if faults is not None else {}),
        },
    )
