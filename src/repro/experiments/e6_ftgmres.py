"""E6 -- FT-GMRES: reliable outer, unreliable inner iterations.

Paper claim (§II-D, §III-D): with selective reliability, "most data and
most computations" can run unreliably while a small reliable outer
iteration preserves robustness -- the fault-tolerant GMRES of Bridges
et al. converges where a conventional solver run entirely at the bulk
(unreliable) level fails or silently degrades.

Procedure: on a convection-diffusion system, sweep the per-operation
fault probability of the unreliable domain and compare
(a) plain restarted GMRES whose *every* matvec runs unreliably (the
all-unreliable baseline), and (b) FT-GMRES where only the inner solves
are unreliable.  Report convergence, true residuals, the fraction of
flops performed unreliably, and the modeled cost relative to running
everything reliably (e.g. under TMR).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.krylov.registry import default_solver_registry
from repro.linalg.matgen import convection_diffusion_2d
from repro.reliability.cost import ReliabilityCostModel
from repro.reliability.registry import resolve_faults
from repro.reliability.spec import FaultSpec
from repro.utils.rng import RngFactory
from repro.utils.tables import Table

__all__ = ["run", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E6",
    name="ftgmres",
    title="FT-GMRES: reliable outer, unreliable inner iterations",
    tags=("srp", "ftgmres", "gmres", "faults"),
    smoke={
        "grid": 8,
        "fault_probabilities": (0.0, 0.05),
        "n_trials": 1,
        "outer_maxiter": 20,
        "inner_maxiter": 10,
    },
    golden={
        "grid": 8,
        "fault_probabilities": (0.0, 0.05),
        "n_trials": 2,
        "outer_maxiter": 20,
        "inner_maxiter": 10,
        "seed": 2013,
    },
)


def run(
    *,
    grid: int = 12,
    fault_probabilities=(0.0, 0.02, 0.05, 0.1),
    tol: float = 1e-8,
    outer_maxiter: int = 40,
    inner_maxiter: int = 15,
    n_trials: int = 3,
    faults=None,
    backend=None,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E6 and return its table.

    ``faults`` selects the *kind* of fault the unreliable domain
    injects (a reliability-registry name, compact spec string or dict);
    ``fault_probabilities`` remains the swept per-operation rate, so
    e.g. ``faults="bitflip:bits=52..62"`` sweeps exponent-bit flips.
    ``None`` keeps the legacy-equivalent any-bit flip model.
    """
    # The fault template: each probability in the sweep instantiates it
    # with p=prob, so the when-axis (rate) and the what-axis (model)
    # stay independent.  "bitflip" with no bits restriction reproduces
    # the pre-registry wiring draw-for-draw.  Only the soft-fault
    # component of a shared axis applies here; specs without one (e.g.
    # pure proc_fail) sweep the rates fault-free.
    fault_template = resolve_faults(faults if faults is not None else "bitflip")
    faults_label = fault_template.describe() if faults is not None else None
    if not fault_template.is_null:
        fault_template = fault_template.soft_component() or resolve_faults("none")
    if fault_template.kind != "none":
        # The sweep re-parameterizes the when-axis as the per-call
        # probability, so a template pinning its own when-axis
        # (times=/rate=) must shed it before each p=prob override.
        stripped = {
            k: v for k, v in fault_template.spec.params.items()
            if k not in ("times", "rate")
        }
        fault_template = resolve_faults(FaultSpec(fault_template.spec.kind, stripped))

    solvers = default_solver_registry()
    matrix = convection_diffusion_2d(grid, peclet=10.0)
    factory = RngFactory(seed)
    b = factory.spawn("rhs").standard_normal(matrix.n_rows)
    b_norm = float(np.linalg.norm(b))
    cost_model = ReliabilityCostModel(reliable_compute_factor=3.0)

    table = Table(
        [
            "fault_prob",
            "solver",
            "converged_rate",
            "mean_true_residual",
            "mean_iterations",
            "unreliable_flop_fraction",
            "cost_vs_all_reliable",
        ],
        title="E6: FT-GMRES (selective reliability) vs all-unreliable GMRES",
    )
    summary = {}

    for prob in fault_probabilities:
        fault_model = fault_template.with_params(p=prob)
        # --- all-unreliable plain GMRES baseline -----------------------
        conv = 0
        residuals = []
        iters = []
        for trial in range(n_trials):
            rng = factory.spawn(f"plain-{prob}-{trial}")
            injector = fault_model.injector(rng, target="plain_matvec")
            calls = {"n": 0}

            def unreliable_op(x, _inj=injector, _calls=calls):
                _calls["n"] += 1
                return _inj.maybe_inject(matrix.matvec(x), now=float(_calls["n"]))

            result = solvers.get("gmres").solve(
                unreliable_op, b, tol=tol, restart=30,
                maxiter=outer_maxiter * inner_maxiter,
            )
            true_res = float(
                np.linalg.norm(b - matrix.matvec(np.asarray(result.x))) / b_norm
            )
            conv += int(result.converged and np.isfinite(true_res) and true_res <= 10 * tol)
            residuals.append(true_res if np.isfinite(true_res) else 1.0)
            iters.append(result.iterations)
        table.add_row(
            prob, "plain_unreliable", conv / n_trials, float(np.mean(residuals)),
            float(np.mean(iters)), 1.0, 1.0 / cost_model.reliable_compute_factor,
        )
        summary[f"plain_{prob}_converged"] = conv / n_trials

        # --- FT-GMRES ---------------------------------------------------
        conv = 0
        residuals = []
        iters = []
        unreliable_fracs = []
        costs = []
        for trial in range(n_trials):
            extra = {}
            if not fault_model.is_null and fault_model.component("bitflip") is None:
                # Non-bit-flip fault kinds (e.g. value perturbation)
                # supply the whole SRP environment themselves.
                extra["environment"] = fault_model.environment(
                    seed=seed + 7 * trial, cost_model=cost_model
                )
            result = solvers.get("ft_gmres").solve(
                matrix, b, tol=tol,
                outer_maxiter=outer_maxiter, outer_restart=outer_maxiter,
                inner_tol=1e-2, inner_maxiter=inner_maxiter, inner_restart=inner_maxiter,
                fault_probability=fault_model.probability,
                bit_range=fault_model.bits,
                seed=seed + 7 * trial,
                cost_model=cost_model,
                **extra,
            )
            true_res = float(
                np.linalg.norm(b - matrix.matvec(np.asarray(result.x))) / b_norm
            )
            conv += int(result.converged and np.isfinite(true_res) and true_res <= 10 * tol)
            residuals.append(true_res if np.isfinite(true_res) else 1.0)
            iters.append(result.iterations)
            unreliable_fracs.append(result.info["unreliable_fraction_flops"])
            costs.append(1.0 / result.info["srp_cost"]["savings_factor"])
        table.add_row(
            prob, "ft_gmres", conv / n_trials, float(np.mean(residuals)),
            float(np.mean(iters)), float(np.mean(unreliable_fracs)),
            float(np.mean(costs)),
        )
        summary[f"ftgmres_{prob}_converged"] = conv / n_trials
        summary[f"ftgmres_{prob}_unreliable_fraction"] = float(np.mean(unreliable_fracs))
    parameters = {
        "grid": grid,
        "fault_probabilities": tuple(fault_probabilities),
        "tol": tol,
        "outer_maxiter": outer_maxiter,
        "inner_maxiter": inner_maxiter,
        "n_trials": n_trials,
        "seed": seed,
    }
    if faults_label is not None:
        parameters["faults"] = faults_label
    if backend is not None:
        # Backend-axis evidence (never present in default/golden runs):
        # the fault-free GMRES anchor executed as a genuine SPMD solve
        # over the requested communicator.  Sim and shmem reduce in the
        # identical ascending-rank order, so this residual history is
        # bit-identical across them -- the conformance suite's E6
        # differential gate pins exactly that.
        from repro.comm.registry import resolve_backend
        from repro.experiments import backend_probe

        bound = resolve_backend(backend)
        parameters["backend"] = bound.spec.to_string()
        summary["backend"] = {
            "spec": bound.spec.to_string(),
            "anchor": backend_probe.distributed_solve(
                bound, "gmres", grid=grid, tol=tol, maxiter=400,
                seed=seed, restart=inner_maxiter,
            ),
        }
    return ExperimentResult(
        experiment="E6",
        claim=(
            "With a reliable outer iteration, GMRES converges even when the bulk of "
            "its work runs unreliably under fault injection, at a fraction of the "
            "cost of making everything reliable."
        ),
        table=table,
        summary=summary,
        parameters=parameters,
    )
