"""E10 -- Selective precision: the fourth sweepable axis.

The paper's selective-reliability argument is about *placement*: the
inner stage of a flexible solve may be unreliable because the reliable
outer iteration bounds the damage (conf_hpdc_Heroux13).  Reduced
precision is the deterministic cousin of that unreliability -- rounding
instead of bit flips, bounded error instead of arbitrary corruption --
so the same placement argument applies, and this driver makes it a
swept matrix: every requested solver from :mod:`repro.krylov.registry`
x every precision from :mod:`repro.reliability.precision` x one
preconditioner axis x one declarative fault spec, with the reduced
precision routed into one of two placements:

* ``target="inner"`` (the selective-precision placement): only the
  inner stage runs at the swept precision.  For ``fgmres`` that stage
  is a *real inner GMRES solve* executed entirely at the swept
  precision through the solver registry's ``precision=`` axis (the
  iterative-refinement shape: fp32 inner solve, fp64 outer recurrence,
  Hessenberg QR and convergence tests); for every other solver it is
  the preconditioner application ``M^{-1} v``, wrapped in a
  :func:`~repro.reliability.lowprecision` domain.
* ``target="outer"`` (the control placement): the *whole* solve runs
  at the swept precision via ``solve(..., precision=...)`` -- operator,
  right-hand side, basis and recurrence all in the low dtype, which
  pins the solve to that dtype's residual floor (about ``1e-7``
  relative for fp32), far above a double-precision target like
  ``tol=1e-8``.

The pinned, executable claim: under ``target="inner"`` the fp32 rows
reach the fp64-accurate answer (correct to the trusted-error
tolerance), while under ``target="outer"`` the same fp32 sweep fails a
double-precision tolerance.  Selective precision, like selective
reliability, is about *where* you spend the cheap mode.

Faults compose as in E9's selective placement: a soft fault model
corrupts the (wrapped) inner stage only -- ``M^{-1} v`` or the FGMRES
inner solve -- never the outer recurrence, so the fault and precision
axes stack on the same inner/outer boundary.
"""

from __future__ import annotations

import contextlib
import inspect
from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.krylov.registry import batch_solve, default_solver_registry
from repro.linalg.matgen import poisson_2d
from repro.precond import parse_precond, resolve_preconds
from repro.reliability import lowprecision, unreliable
from repro.reliability.precision import PrecisionDomain, parse_precision
from repro.reliability.registry import resolve_faults
from repro.reliability.sdc import classify_outcome
from repro.reliability.seeding import derive_fault_seed
from repro.utils.rng import RngFactory
from repro.utils.tables import Table
from repro.utils.validation import check_in

__all__ = ["run", "run_batch", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E10",
    name="precision",
    title="Selective precision: solver x precision x preconditioner x fault "
          "matrix, inner vs outer placement",
    tags=("precision", "registry", "srp", "mixed-precision"),
    smoke={"grid": 6, "solvers": ("gmres",),
           "precisions": ("fp64", "fp32"), "preconds": "none",
           "faults": "none"},
    golden={"grid": 8, "solvers": ("gmres", "fgmres", "cg"),
            "precisions": ("fp64", "fp32", "fp32:storage=fp16"),
            "preconds": ("none", "jacobi"),
            "faults": "bitflip:p=0.05,bits=52..62", "seed": 2013},
)

# Solvers swept by default: the flexible solver that owns the claim's
# flagship row (fgmres, whose inner stage is a real low-precision
# GMRES) plus one fixed-preconditioner solver per family.
_DEFAULT_SOLVERS = ("gmres", "fgmres", "cg")

#: Inner-solve budget of the fgmres selective-precision configuration.
_INNER_TOL = 1e-4
_INNER_MAXITER = 50


def _solver_axis(solvers) -> List[str]:
    if solvers is None:
        return list(_DEFAULT_SOLVERS)
    if isinstance(solvers, str):
        return [solvers]
    return list(solvers)


def _precision_axis(precisions) -> List[str]:
    """Canonical spec strings of the swept precisions."""
    if precisions is None:
        from repro.reliability.precision import (
            default_precision_registry,
            precision_names,
        )

        registry = default_precision_registry()
        values = [registry.get(name).spec for name in precision_names()]
    elif isinstance(precisions, str):
        values = [precisions]
    else:
        values = list(precisions)
    return [parse_precision(value).to_string() for value in values]


def _precond_axis(preconds) -> List[str]:
    if preconds is None:
        from repro.precond import precond_names

        return precond_names()
    if isinstance(preconds, str):
        return [preconds]
    return list(preconds)


def _fgmres_inner_solve(matrix, built, pspec, registry, *, precision_used):
    """The selective-precision FGMRES inner stage: a whole GMRES solve
    at the swept precision (preconditioned by the cell's ``built``)."""
    inner_entry = registry.get("gmres")

    def inner_solve(v):
        result = inner_entry.solve(
            matrix, v, tol=_INNER_TOL, maxiter=_INNER_MAXITER,
            precond=built, precision=precision_used,
        )
        return result.x

    return inner_solve


def run(
    *,
    grid: int = 8,
    solvers: Optional[Union[str, Sequence[str]]] = None,
    precisions: Optional[Union[str, Sequence[str]]] = None,
    preconds: Optional[Union[str, Sequence[str]]] = "jacobi",
    faults=None,
    target: str = "inner",
    tol: float = 1e-8,
    maxiter: int = 400,
    error_tolerance: float = 1e-5,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E10 and return its table.

    Parameters
    ----------
    grid:
        2-D Poisson grid size (SPD, so every swept solver applies).
    solvers:
        Solver-registry names to run (string or sequence; ``None`` =
        ``gmres``/``fgmres``/``cg``).
    precisions:
        The precision axis: registry names (``"fp32"``) or compact
        specs (``"fp32:storage=fp16"``), string or sequence; ``None`` =
        every registered precision.
    preconds:
        The preconditioner axis (names or inline specs); defaults to
        ``"jacobi"`` alone; ``None`` = every registered preconditioner.
    faults:
        The fault axis (name, compact spec, dict or ``FaultSpec``);
        only the soft component corrupts data, and it lands on the
        wrapped inner stage (never the outer recurrence).  ``None``
        runs fault-free.
    target:
        Where the reduced precision lands: ``"inner"`` places it on
        the inner stage only (the FGMRES inner solve, or ``M^{-1} v``
        for the fixed-preconditioner solvers), ``"outer"`` runs the
        whole solve at the swept precision via ``precision=``.
    tol, maxiter:
        Outer solver settings (the fgmres inner solve uses its own
        fixed budget).
    error_tolerance:
        Trusted-error threshold of the outcome classification.
    seed:
        Root seed: right-hand side and per-cell fault streams.
    """
    check_in(target, ("inner", "outer"), "target")
    registry = default_solver_registry()
    solver_list = _solver_axis(solvers)
    precision_list = _precision_axis(precisions)
    precond_list = _precond_axis(preconds)

    fault_model = resolve_faults(faults)
    soft_model = fault_model.soft_component()

    matrix = poisson_2d(grid)
    factory = RngFactory(seed)
    b = factory.spawn("rhs").standard_normal(matrix.n_rows)
    x_ref = np.linalg.solve(matrix.to_dense(), b)
    x_ref_norm = float(np.linalg.norm(x_ref))

    table = Table(
        ["solver", "precond", "precision", "iterations", "converged",
         "faults", "error", "outcome"],
        title=f"E10: solver x precision x preconditioner x fault matrix "
              f"(precision on the {target} stage)",
    )

    n_runs = 0
    n_correct = 0
    n_silent = 0
    total_faults = 0
    low_correct = 0
    low_runs = 0
    for solver_name in solver_list:
        solver = registry.get(solver_name)
        for precond_name in precond_list:
            precond_label = parse_precond(precond_name).to_string()
            for precision_label in precision_list:
                pspec = parse_precision(precision_label)
                # Setup runs reliably and in full precision: the
                # preconditioner is always built from the clean fp64
                # matrix (outer-target solves rebuild it from the cast
                # operator inside solve(), via the spec string).
                built = resolve_preconds(precond_name, matrix=matrix)
                fault_seed = derive_fault_seed(
                    seed, f"{solver.name}/{precond_label}/{precision_label}"
                )
                params = {"tol": tol, "maxiter": maxiter}

                result, faults_hit = _solve_cell(
                    solver, matrix, b, built, pspec,
                    soft_model=soft_model, fault_seed=fault_seed,
                    target=target, registry=registry, params=params,
                    precond_name=precond_name,
                )

                x = np.asarray(result.x, dtype=np.float64)
                finite = bool(np.all(np.isfinite(x)))
                error = (
                    float(np.linalg.norm(x - x_ref)) / x_ref_norm
                    if finite else float("inf")
                )
                outcome = classify_outcome(
                    converged=result.converged,
                    error_norm=error,
                    tolerance=error_tolerance,
                    detected=result.detected_faults > 0,
                )
                table.add_row(
                    solver.name,
                    precond_label,
                    precision_label,
                    result.iterations,
                    result.converged,
                    faults_hit,
                    f"{error:.3e}" if finite else "inf",
                    outcome,
                )
                n_runs += 1
                total_faults += faults_hit
                n_silent += int(outcome == "sdc")
                correct = result.converged and error <= error_tolerance
                n_correct += int(correct)
                if not pspec.is_default:
                    low_runs += 1
                    low_correct += int(correct)

    summary = {
        "n_runs": n_runs,
        "n_solvers": len(solver_list),
        "n_precisions": len(precision_list),
        "n_preconds": len(precond_list),
        "n_correct": n_correct,
        "n_silent_corruptions": n_silent,
        "total_faults_injected": total_faults,
        # The pinned claim, as counters: under target="inner" every
        # reduced-precision row should be correct; under
        # target="outer" they fail a double-precision tolerance.
        "n_lowprecision_runs": low_runs,
        "n_lowprecision_correct": low_correct,
        "target": target,
        "faults": fault_model.describe(),
    }
    parameters = {
        "grid": grid,
        "solvers": tuple(solver_list),
        "precisions": tuple(precision_list),
        "preconds": tuple(precond_list),
        "faults": fault_model.describe(),
        "target": target,
        "tol": tol,
        "maxiter": maxiter,
        "error_tolerance": error_tolerance,
        "seed": seed,
    }
    return ExperimentResult(
        experiment="E10",
        claim=_CLAIM,
        table=table,
        summary=summary,
        parameters=parameters,
    )


_CLAIM = (
    "Selective precision: reduced precision placed on the inner stage only "
    "(the FGMRES inner solve, or M^-1 v) still reaches the fp64-accurate "
    "answer, while running the whole solve at fp32 pins it to the fp32 "
    "residual floor and fails a double-precision tolerance."
)


def _solve_cell(
    solver, matrix, b, built, pspec, *,
    soft_model, fault_seed, target, registry, params, precond_name,
):
    """One (solver, precond, precision) cell; returns (result, faults)."""
    precision_label = pspec.to_string()
    faults_hit = 0
    with np.errstate(over="ignore", invalid="ignore"):
        if target == "outer":
            # Whole solve at the swept precision.  Spec-shaped
            # preconditioners go through by name so solve() builds them
            # from the *cast* operator -- M^{-1} v then runs at the
            # swept precision natively, like every other kernel.
            if soft_model is not None and built is not None:
                with unreliable(soft_model, seed=fault_seed,
                                name=f"precision/{solver.name}") as domain:
                    wrapped = domain.preconditioner(
                        built, flops_per_call=float(matrix.nnz)
                    )
                    result = solver.solve(
                        matrix, b, precond=wrapped,
                        precision=precision_label, **params,
                    )
                faults_hit = domain.faults_injected()
            else:
                result = solver.solve(
                    matrix, b, precond=precond_name,
                    precision=precision_label, **params,
                )
        elif solver.name == "fgmres":
            # The flagship selective-precision configuration: a real
            # inner GMRES at the swept precision, fp64 outer.  The
            # lowprecision() wrap pins the stage's input and output to
            # the compute dtype (the bounded-error contract); faults
            # land outside it, on the widened float64 result, exactly
            # where E9 lands them on M^{-1} v.
            inner = _fgmres_inner_solve(
                matrix, built, pspec, registry,
                precision_used=precision_label,
            )
            with lowprecision(pspec) as pdom:
                low_inner = pdom.inner_solve(inner)
                if soft_model is not None:
                    with unreliable(soft_model, seed=fault_seed,
                                    name=f"precision/{solver.name}") as domain:
                        wrapped = domain.preconditioner(
                            low_inner, flops_per_call=float(matrix.nnz)
                        )
                        result = solver.solve(matrix, b, precond=wrapped, **params)
                    faults_hit = domain.faults_injected()
                else:
                    result = solver.solve(matrix, b, precond=low_inner, **params)
        else:
            # Fixed-preconditioner solvers: M^{-1} v at the swept
            # precision (identity rounding when there is none).
            with lowprecision(pspec) as pdom:
                low = pdom.preconditioner(built)
                if soft_model is not None and built is not None:
                    with unreliable(soft_model, seed=fault_seed,
                                    name=f"precision/{solver.name}") as domain:
                        wrapped = domain.preconditioner(
                            low, flops_per_call=float(matrix.nnz)
                        )
                        result = solver.solve(matrix, b, precond=wrapped, **params)
                    faults_hit = domain.faults_injected()
                else:
                    result = solver.solve(matrix, b, precond=low, **params)
    return result, faults_hit


def run_batch(params_list: List[Mapping]) -> List[ExperimentResult]:
    """Run several E10 scenarios in lockstep; results identical to :func:`run`.

    The scenarios (typically one per seed) must agree on every
    parameter except ``seed``; incompatible sets fall back to
    sequential :func:`run` calls.  Cells whose configuration has a
    lockstep path (the default-precision rows of ``gmres``/``cg``)
    advance together through one
    :func:`repro.krylov.registry.batch_solve` call per cell;
    reduced-precision and fgmres cells run their lanes sequentially
    inside that same call (the batch engine is pinned to the bit-exact
    float64 contract), so every lane is built and seeded exactly as
    :func:`run` builds it.
    """
    resolved = [_bind_defaults(p) for p in params_list]
    if not resolved:
        return []
    if len(resolved) == 1 or not _compatible(resolved):
        return [run(**dict(p)) for p in params_list]

    shared = resolved[0]
    grid = shared["grid"]
    target = shared["target"]
    tol = shared["tol"]
    maxiter = shared["maxiter"]
    error_tolerance = shared["error_tolerance"]
    seeds = [p["seed"] for p in resolved]
    n_scenarios = len(resolved)

    check_in(target, ("inner", "outer"), "target")
    registry = default_solver_registry()
    solver_list = _solver_axis(shared["solvers"])
    precision_list = _precision_axis(shared["precisions"])
    precond_list = _precond_axis(shared["preconds"])

    fault_model = resolve_faults(shared["faults"])
    soft_model = fault_model.soft_component()

    matrix = poisson_2d(grid)
    dense = matrix.to_dense()
    b_list = [
        RngFactory(s).spawn("rhs").standard_normal(matrix.n_rows) for s in seeds
    ]
    x_refs = [np.linalg.solve(dense, b) for b in b_list]
    x_ref_norms = [float(np.linalg.norm(x)) for x in x_refs]

    tables = [
        Table(
            ["solver", "precond", "precision", "iterations", "converged",
             "faults", "error", "outcome"],
            title=f"E10: solver x precision x preconditioner x fault matrix "
                  f"(precision on the {target} stage)",
        )
        for _ in range(n_scenarios)
    ]
    counters = [
        {"n_runs": 0, "n_correct": 0, "n_silent": 0, "total_faults": 0,
         "low_runs": 0, "low_correct": 0}
        for _ in range(n_scenarios)
    ]

    for solver_name in solver_list:
        solver = registry.get(solver_name)
        for precond_name in precond_list:
            precond_label = parse_precond(precond_name).to_string()
            for precision_label in precision_list:
                pspec = parse_precision(precision_label)
                fault_seeds = [
                    derive_fault_seed(
                        s, f"{solver.name}/{precond_label}/{precision_label}"
                    )
                    for s in seeds
                ]
                params = {"tol": tol, "maxiter": maxiter}

                results, faults_hits = _solve_cell_lanes(
                    solver, matrix, b_list, precond_name, pspec,
                    soft_model=soft_model, fault_seeds=fault_seeds,
                    target=target, registry=registry, params=params,
                )

                for s in range(n_scenarios):
                    result = results[s]
                    x = np.asarray(result.x, dtype=np.float64)
                    finite = bool(np.all(np.isfinite(x)))
                    error = (
                        float(np.linalg.norm(x - x_refs[s])) / x_ref_norms[s]
                        if finite else float("inf")
                    )
                    outcome = classify_outcome(
                        converged=result.converged,
                        error_norm=error,
                        tolerance=error_tolerance,
                        detected=result.detected_faults > 0,
                    )
                    tables[s].add_row(
                        solver.name,
                        precond_label,
                        precision_label,
                        result.iterations,
                        result.converged,
                        faults_hits[s],
                        f"{error:.3e}" if finite else "inf",
                        outcome,
                    )
                    cell = counters[s]
                    cell["n_runs"] += 1
                    cell["total_faults"] += faults_hits[s]
                    cell["n_silent"] += int(outcome == "sdc")
                    correct = result.converged and error <= error_tolerance
                    cell["n_correct"] += int(correct)
                    if not pspec.is_default:
                        cell["low_runs"] += 1
                        cell["low_correct"] += int(correct)

    out = []
    for s in range(n_scenarios):
        cell = counters[s]
        summary = {
            "n_runs": cell["n_runs"],
            "n_solvers": len(solver_list),
            "n_precisions": len(precision_list),
            "n_preconds": len(precond_list),
            "n_correct": cell["n_correct"],
            "n_silent_corruptions": cell["n_silent"],
            "total_faults_injected": cell["total_faults"],
            "n_lowprecision_runs": cell["low_runs"],
            "n_lowprecision_correct": cell["low_correct"],
            "target": target,
            "faults": fault_model.describe(),
        }
        parameters = {
            "grid": grid,
            "solvers": tuple(solver_list),
            "precisions": tuple(precision_list),
            "preconds": tuple(precond_list),
            "faults": fault_model.describe(),
            "target": target,
            "tol": tol,
            "maxiter": maxiter,
            "error_tolerance": error_tolerance,
            "seed": seeds[s],
        }
        out.append(
            ExperimentResult(
                experiment="E10",
                claim=_CLAIM,
                table=tables[s],
                summary=summary,
                parameters=parameters,
            )
        )
    return out


def _solve_cell_lanes(
    solver, matrix, b_list, precond_name, pspec, *,
    soft_model, fault_seeds, target, registry, params,
):
    """One (solver, precond, precision) cell for all lanes.

    Cells route through :func:`batch_solve` whenever the whole lane
    configuration is expressible as its declarative surface (the fixed-
    preconditioner placements); the fgmres inner-solve configuration is
    built per lane and solved sequentially, exactly as :func:`run`
    builds it.
    """
    n_scenarios = len(b_list)
    # Built per lane: stateful preconditioners (and the wrapping
    # proxies) must not be shared across lanes.
    builts = [
        resolve_preconds(precond_name, matrix=matrix)
        for _ in range(n_scenarios)
    ]
    if target != "outer" and solver.name == "fgmres":
        results = []
        faults_hits = []
        for s in range(n_scenarios):
            result, hit = _solve_cell(
                solver, matrix, b_list[s], builts[s], pspec,
                soft_model=soft_model, fault_seed=fault_seeds[s],
                target=target, registry=registry, params=params,
                precond_name=precond_name,
            )
            results.append(result)
            faults_hits.append(hit)
        return results, faults_hits

    precision_label = pspec.to_string()
    with np.errstate(over="ignore", invalid="ignore"):
        if target == "outer":
            if soft_model is not None and builts[0] is not None:
                with contextlib.ExitStack() as stack:
                    domains = [
                        stack.enter_context(
                            unreliable(soft_model, seed=fault_seeds[s],
                                       name=f"precision/{solver.name}")
                        )
                        for s in range(n_scenarios)
                    ]
                    wrapped = [
                        domains[s].preconditioner(
                            builts[s], flops_per_call=float(matrix.nnz)
                        )
                        for s in range(n_scenarios)
                    ]
                    results = batch_solve(
                        solver.name, matrix, b_list,
                        precision=precision_label,
                        lane_params=[{"precond": w} for w in wrapped],
                        registry=registry, **params,
                    )
                faults_hits = [d.faults_injected() for d in domains]
            else:
                results = batch_solve(
                    solver.name, matrix, b_list,
                    precision=precision_label,
                    lane_params=[{"precond": precond_name}] * n_scenarios,
                    registry=registry, **params,
                )
                faults_hits = [0] * n_scenarios
        else:
            lows = [
                PrecisionDomain(pspec).preconditioner(builts[s])
                for s in range(n_scenarios)
            ]
            if soft_model is not None and builts[0] is not None:
                with contextlib.ExitStack() as stack:
                    domains = [
                        stack.enter_context(
                            unreliable(soft_model, seed=fault_seeds[s],
                                       name=f"precision/{solver.name}")
                        )
                        for s in range(n_scenarios)
                    ]
                    wrapped = [
                        domains[s].preconditioner(
                            lows[s], flops_per_call=float(matrix.nnz)
                        )
                        for s in range(n_scenarios)
                    ]
                    results = batch_solve(
                        solver.name, matrix, b_list,
                        lane_params=[{"precond": w} for w in wrapped],
                        registry=registry, **params,
                    )
                faults_hits = [d.faults_injected() for d in domains]
            else:
                results = batch_solve(
                    solver.name, matrix, b_list,
                    lane_params=[{"precond": low} for low in lows],
                    registry=registry, **params,
                )
                faults_hits = [0] * n_scenarios
    return results, faults_hits


def _bind_defaults(params: Mapping) -> dict:
    """Apply :func:`run`'s keyword defaults to one scenario's parameters."""
    bound = inspect.signature(run).bind(**dict(params))
    bound.apply_defaults()
    return dict(bound.arguments)


def _compatible(resolved: List[dict]) -> bool:
    """Whether the scenarios agree on everything except the seed."""
    reference = {k: v for k, v in resolved[0].items() if k != "seed"}
    return all(
        {k: v for k, v in p.items() if k != "seed"} == reference
        for p in resolved[1:]
    )
