"""E4 -- Local recovery versus global checkpoint/restart.

Paper claim (§I, §II-C, §III-C): killing every process and restarting
from a global checkpoint is not viable when failures are frequent;
explicit time-stepping applications can instead recover locally from
neighbour-redundant persistent state, at a cost that does not grow with
the machine.

Procedure: run the distributed explicit heat equation under the LFLR
driver with an injected rank failure and verify the final field matches
the failure-free run exactly; then compare, on identical failure
traces, the virtual-time overhead of LFLR recovery against the global
CPR baseline (checkpoint every k steps, full restart and recompute on
failure), sweeping the number of failures.
"""

from __future__ import annotations

import numpy as np

from repro.checkpoint.cpr import run_cpr_stepped
from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.reliability.process import FailurePlan
from repro.reliability.registry import resolve_faults
from repro.lflr.explicit import run_lflr_heat
from repro.machine.model import MachineModel
from repro.pde.heat import HeatProblem1D, heat_step_explicit, stable_time_step
from repro.utils.tables import Table

__all__ = ["run", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E4",
    name="lflr_vs_cpr",
    title="Local recovery versus global checkpoint/restart",
    tags=("lflr", "cpr", "pde", "faults"),
    smoke={"n_ranks": 4, "n_global": 32, "n_steps": 15, "failure_counts": (0, 1)},
    golden={
        "n_ranks": 4,
        "n_global": 32,
        "n_steps": 20,
        "failure_counts": (0, 1, 2),
        "seed": 2013,
    },
)


def run(
    *,
    n_ranks: int = 4,
    n_global: int = 48,
    n_steps: int = 30,
    failure_counts=(0, 1, 2),
    checkpoint_interval: int = 10,
    faults=None,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E4 and return its table.

    ``faults`` (reliability-registry name, compact spec string or
    dict) derives the hard-fault plan from a declarative process-
    failure model -- e.g. ``"proc_fail:mtbf=0.05"`` samples failures
    over the reference run's virtual time -- replacing the legacy
    evenly-spaced plans of ``failure_counts``.  The fault-free row is
    always kept as the reference.
    """
    fault_model = resolve_faults(faults) if faults is not None else None
    machine = MachineModel(
        flop_rate=1e9,
        latency=1e-6,
        bandwidth=1e9,
        checkpoint_bandwidth=5e7,
        restart_overhead=0.05,
        local_recovery_overhead=1e-4,
    )

    # Failure-free reference (also gives the time scale for placing faults).
    reference = run_lflr_heat(
        n_ranks, n_global=n_global, n_steps=n_steps, machine=machine
    )
    h = 1.0 / (n_global + 1)
    heat = HeatProblem1D(n_points=n_global, alpha=1.0, dt=stable_time_step(h, 1.0))
    sequential = heat.run(n_steps)

    # Per-step time of the equivalent CPR job: the failure-free LFLR
    # virtual time divided by the number of steps keeps the two baselines
    # on the same time scale.
    step_time = max(reference.virtual_time / n_steps, 1e-9)

    def cpr_step(state, step_index):
        return {"u": heat_step_explicit(state["u"], heat.dt, heat.h, 1.0)}

    table = Table(
        [
            "n_failures",
            "lflr_correct",
            "lflr_recoveries",
            "lflr_time",
            "lflr_overhead",
            "cpr_restarts",
            "cpr_time",
            "cpr_overhead",
            "overhead_ratio",
        ],
        title="E4: LFLR vs global checkpoint/restart on the explicit heat equation",
    )
    summary = {}
    if fault_model is not None:
        # Only the spec's process-failure component matters here; a
        # fault axis shared across experiments may also carry soft-fault
        # components E4 has no use for (and "none"/soft-only specs just
        # run the fault-free reference).
        proc = fault_model.component("proc_fail")
        spec_plan = (
            proc.failure_plan(
                n_ranks=n_ranks, horizon=reference.virtual_time, seed=seed
            )
            if proc is not None
            else FailurePlan.none()
        )
        plans = [(0, FailurePlan.none())]
        if len(spec_plan):
            plans.append((len(spec_plan), spec_plan))
    else:
        plans = []
        for n_failures in failure_counts:
            if n_failures == 0:
                plan = FailurePlan.none()
            else:
                # Space failures far enough apart that each recovery completes
                # before the next failure (see run_lflr_heat notes); rotate the
                # failing rank so partners differ.
                spacing = reference.virtual_time * 0.5 / n_failures + 50 * machine.local_recovery_overhead
                plan = FailurePlan(
                    [
                        (reference.virtual_time * 0.2 + i * spacing, 1 + (2 * i) % (n_ranks - 1))
                        for i in range(n_failures)
                    ]
                )
            plans.append((n_failures, plan))
    for n_failures, plan in plans:
        lflr = run_lflr_heat(
            n_ranks, n_global=n_global, n_steps=n_steps,
            failure_plan=plan, machine=machine,
            # The spec's msg_corrupt component (if any) corrupts message
            # payloads; hard faults stay pinned by the explicit plan.
            faults=fault_model, fault_seed=seed,
        )
        correct = bool(np.allclose(lflr.field, sequential, atol=1e-12))
        lflr_overhead = lflr.virtual_time - reference.virtual_time

        cpr = run_cpr_stepped(
            cpr_step,
            {"u": heat.run(0)},
            n_steps,
            machine=machine,
            n_ranks=n_ranks,
            interval=checkpoint_interval,
            step_time=step_time,
            failure_plan=plan,
        )
        cpr_reference = run_cpr_stepped(
            cpr_step,
            {"u": heat.run(0)},
            n_steps,
            machine=machine,
            n_ranks=n_ranks,
            interval=checkpoint_interval,
            step_time=step_time,
            failure_plan=FailurePlan.none(),
        )
        cpr_overhead = cpr.virtual_time - cpr_reference.virtual_time
        ratio = cpr_overhead / lflr_overhead if lflr_overhead > 0 else float("inf")
        table.add_row(
            n_failures, correct, lflr.n_recoveries, lflr.virtual_time,
            lflr_overhead, cpr.n_restarts, cpr.virtual_time, cpr_overhead,
            ratio if n_failures else 1.0,
        )
        summary[f"correct_{n_failures}"] = correct
        if n_failures:
            summary[f"overhead_ratio_{n_failures}"] = ratio
    summary["reference_time"] = reference.virtual_time
    return ExperimentResult(
        experiment="E4",
        claim=(
            "An explicit PDE solver recovers locally from process loss with the "
            "correct answer, at a per-failure cost far below a global "
            "checkpoint/restart of the same run."
        ),
        table=table,
        summary=summary,
        parameters={
            "n_ranks": n_ranks,
            "n_global": n_global,
            "n_steps": n_steps,
            "checkpoint_interval": checkpoint_interval,
            "seed": seed,
            **({"faults": fault_model.describe()} if fault_model is not None else {}),
        },
    )
