"""E8 -- The unified solver engine: solver x policy x fault matrix.

The engine refactor makes solver choice and resilience policy
orthogonal, sweepable axes (paper thesis: resilience is an
*algorithmic layer*, composable with any solver).  This driver
demonstrates it: run every solver in the
:mod:`repro.krylov.registry` -- resolved **by name**, no solver
imports -- on one SPD model problem, under one resilience-policy
setting and one declarative fault model from the
:mod:`repro.reliability.registry`, and classify each outcome against a
trusted direct solution.

Faults are resolved the reliability-layer way, uniformly for every
solver: the ``faults`` spec (a registry name, compact spec string or
dict -- e.g. ``"bitflip:p=0.02,bits=52..62"``) builds a
:class:`~repro.reliability.models.FaultModel` whose environment wraps
the operator in an
:class:`~repro.reliability.environment.UnreliableOperator`.  FT-GMRES
is the exception by design -- selective reliability *is* its policy,
so the fault model's probability is routed into its unreliable inner
domain while its outer iteration stays reliable.  The legacy
``fault_probability``/``bit_range`` parameters remain as the
fault-free/bit-flip shorthand and resolve to the same model.

The table shows, per solver, the effective policy (generic sweep
values degrade to the strongest policy each solver supports), the work
done, how many faults hit the operator, how many were detected, and
the trusted-error classification of
:func:`repro.reliability.sdc.classify_outcome`.
"""

from __future__ import annotations

import inspect
from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.krylov.registry import batch_solve, default_solver_registry
from repro.linalg.matgen import poisson_2d
from repro.reliability.registry import resolve_faults
from repro.reliability.sdc import classify_outcome
from repro.reliability.seeding import derive_fault_seed
from repro.skeptical.gmres_sdc import estimate_operator_norm
from repro.utils.rng import RngFactory
from repro.utils.tables import Table

__all__ = ["run", "run_batch", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E8",
    name="solver_matrix",
    title="Unified solver engine: solver x resilience-policy x fault matrix",
    tags=("engine", "registry", "solvers", "faults", "srp"),
    smoke={"grid": 6, "solvers": ("gmres", "cg"), "policy": "none",
           "fault_probability": 0.0},
    golden={"grid": 8, "policy": "skeptical", "fault_probability": 0.02,
            "bit_range": (52, 62), "seed": 2013},
)


def run(
    *,
    grid: int = 8,
    solvers: Optional[Union[str, Sequence[str]]] = None,
    policy: str = "none",
    faults=None,
    fault_probability: float = 0.0,
    bit_range=None,
    tol: float = 1e-8,
    maxiter: int = 400,
    error_tolerance: float = 1e-5,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E8 and return its table.

    Parameters
    ----------
    grid:
        2-D Poisson grid size (SPD, so every registered solver applies).
    solvers:
        Registry names to run (string or sequence; ``None`` = all).
    policy:
        Resilience-policy axis value -- generic (``"none"``,
        ``"guard"``, ``"skeptical"``) or a concrete policy name; each
        solver resolves it to the strongest policy it supports.
    faults:
        The fault axis: a registered fault-model name, compact spec
        string, dict or :class:`~repro.reliability.spec.FaultSpec`
        (e.g. ``"bitflip:p=0.02,bits=52..62"``).  ``None`` builds the
        legacy-equivalent bit-flip model from ``fault_probability`` /
        ``bit_range``.
    fault_probability, bit_range:
        Legacy shorthand for ``faults="bitflip:p=...,bits=..."``;
        ignored when ``faults`` is given.
    tol, maxiter:
        Solver settings (mapped onto outer/inner limits for FT-GMRES).
    error_tolerance:
        Trusted-error threshold of the outcome classification.
    seed:
        Root seed: right-hand side and per-solver fault streams.
    """
    registry = default_solver_registry()
    if solvers is None:
        names = registry.names()
    elif isinstance(solvers, str):
        names = [solvers]
    else:
        names = list(solvers)

    if faults is None:
        fault_model = resolve_faults(
            "bitflip:p=0.0",
            p=float(fault_probability),
            bits=tuple(bit_range) if bit_range is not None else None,
        )
    else:
        fault_model = resolve_faults(faults)
    # Operator corruption comes from the spec's soft-fault component;
    # hard-fault-only specs (e.g. pure proc_fail) run the matrix clean.
    soft_model = fault_model.soft_component()
    fault_p = soft_model.probability if soft_model is not None else 0.0
    fault_bits = soft_model.bits if soft_model is not None else None

    matrix = poisson_2d(grid)
    factory = RngFactory(seed)
    b = factory.spawn("rhs").standard_normal(matrix.n_rows)
    x_ref = np.linalg.solve(matrix.to_dense(), b)
    x_ref_norm = float(np.linalg.norm(x_ref))
    # Setup runs in reliable mode (the SkP assumption): the skeptical
    # solvers get their ||A|| estimate from the *clean* matrix, never
    # through the fault-injecting operator wrapper.
    trusted_norm = estimate_operator_norm(matrix, b)

    table = Table(
        ["solver", "policy", "iterations", "converged", "faults", "detected",
         "error", "outcome"],
        title="E8: solver x resilience-policy x fault-schedule matrix",
    )

    n_correct = 0
    n_detected = 0
    n_silent = 0
    total_faults = 0
    for name in names:
        solver = registry.get(name)
        fault_seed = derive_fault_seed(seed, name)
        environment = None
        params = {"tol": tol}
        if solver.name == "ft_gmres":
            # Selective reliability: faults go to the unreliable inner
            # domain, the outer iteration stays reliable.
            operator = matrix
            params.update(
                outer_maxiter=min(maxiter, 50),
                inner_maxiter=20,
                fault_probability=fault_p,
                bit_range=fault_bits,
                seed=fault_seed,
            )
            if soft_model is not None and soft_model.kind != "bitflip":
                # Non-bit-flip fault kinds (e.g. value perturbation)
                # supply the whole SRP environment themselves, so
                # ft_gmres sees the same fault model as every other
                # solver in the row.
                params["environment"] = soft_model.environment(seed=fault_seed)
        else:
            params["maxiter"] = maxiter
            if soft_model is not None:
                environment = soft_model.environment(seed=fault_seed)
                operator = environment.unreliable_operator(
                    matrix.matvec, flops_per_call=2.0 * matrix.nnz
                )
            else:
                operator = matrix

        effective_policy = solver.resolve_policy(policy)
        policy_options = (
            {"operator_norm": trusted_norm}
            if effective_policy in ("skeptical_restart", "skeptical_abort")
            else None
        )
        result = solver.solve(
            operator, b, policy=policy, policy_options=policy_options, **params
        )

        if solver.name == "ft_gmres":
            faults_hit = int(result.info["srp_summary"]["faults_injected"])
        else:
            faults_hit = environment.faults_injected() if environment is not None else 0
        x = np.asarray(result.x, dtype=np.float64)
        finite = bool(np.all(np.isfinite(x)))
        error = (
            float(np.linalg.norm(x - x_ref)) / x_ref_norm if finite else float("inf")
        )
        outcome = classify_outcome(
            converged=result.converged,
            error_norm=error,
            tolerance=error_tolerance,
            detected=result.detected_faults > 0,
        )
        table.add_row(
            solver.name,
            result.info["policy_name"],
            result.iterations,
            result.converged,
            faults_hit,
            result.detected_faults,
            f"{error:.3e}" if finite else "inf",
            outcome,
        )
        total_faults += faults_hit
        n_detected += int(result.detected_faults > 0)
        n_silent += int(outcome == "sdc")
        n_correct += int(result.converged and error <= error_tolerance)

    summary = {
        "n_solvers": len(names),
        "n_correct": n_correct,
        "n_detected_runs": n_detected,
        "n_silent_corruptions": n_silent,
        "total_faults_injected": total_faults,
        "policy": policy,
        "fault_probability": fault_probability if faults is None else fault_p,
    }
    parameters = {
        "grid": grid,
        "solvers": tuple(names),
        "policy": policy,
        "fault_probability": fault_probability,
        "bit_range": tuple(bit_range) if bit_range is not None else None,
        "tol": tol,
        "maxiter": maxiter,
        "error_tolerance": error_tolerance,
        "seed": seed,
    }
    if faults is not None:
        summary["faults"] = fault_model.describe()
        parameters["faults"] = fault_model.describe()
    return ExperimentResult(
        experiment="E8",
        claim=_CLAIM,
        table=table,
        summary=summary,
        parameters=parameters,
    )


_CLAIM = (
    "Resilience is an algorithmic layer: one solver engine composes every "
    "registered solver with pluggable resilience policies, so solver choice, "
    "policy and fault schedule are independent sweep axes."
)


def run_batch(params_list: List[Mapping]) -> List[ExperimentResult]:
    """Run several E8 scenarios in lockstep; results identical to :func:`run`.

    The scenarios (typically one per seed) must agree on every
    parameter except ``seed``; incompatible sets fall back to
    sequential :func:`run` calls.  Each batchable solver row solves all
    scenarios as one :func:`repro.krylov.registry.batch_solve` call,
    with per-scenario fault-injecting operators and per-scenario
    trusted ``operator_norm`` estimates carried as lane parameters so
    every lane draws the exact fault stream its sequential run would.
    FT-GMRES keeps its selective-reliability wiring and runs
    sequentially per lane, exactly as :func:`run` builds it.
    """
    resolved = [_bind_defaults(p) for p in params_list]
    if not resolved:
        return []
    if len(resolved) == 1 or not _compatible(resolved):
        return [run(**dict(p)) for p in params_list]

    shared = resolved[0]
    grid = shared["grid"]
    solvers = shared["solvers"]
    policy = shared["policy"]
    faults = shared["faults"]
    fault_probability = shared["fault_probability"]
    bit_range = shared["bit_range"]
    tol = shared["tol"]
    maxiter = shared["maxiter"]
    error_tolerance = shared["error_tolerance"]
    seeds = [p["seed"] for p in resolved]
    n_scenarios = len(resolved)

    registry = default_solver_registry()
    if solvers is None:
        names = registry.names()
    elif isinstance(solvers, str):
        names = [solvers]
    else:
        names = list(solvers)

    if faults is None:
        fault_model = resolve_faults(
            "bitflip:p=0.0",
            p=float(fault_probability),
            bits=tuple(bit_range) if bit_range is not None else None,
        )
    else:
        fault_model = resolve_faults(faults)
    soft_model = fault_model.soft_component()
    fault_p = soft_model.probability if soft_model is not None else 0.0
    fault_bits = soft_model.bits if soft_model is not None else None

    matrix = poisson_2d(grid)
    dense = matrix.to_dense()
    b_list = [
        RngFactory(s).spawn("rhs").standard_normal(matrix.n_rows) for s in seeds
    ]
    x_refs = [np.linalg.solve(dense, b) for b in b_list]
    x_ref_norms = [float(np.linalg.norm(x)) for x in x_refs]
    trusted_norms = [estimate_operator_norm(matrix, b) for b in b_list]

    tables = [
        Table(
            ["solver", "policy", "iterations", "converged", "faults", "detected",
             "error", "outcome"],
            title="E8: solver x resilience-policy x fault-schedule matrix",
        )
        for _ in range(n_scenarios)
    ]
    counters = [
        {"n_correct": 0, "n_detected": 0, "n_silent": 0, "total_faults": 0}
        for _ in range(n_scenarios)
    ]

    for name in names:
        solver = registry.get(name)
        fault_seeds = [derive_fault_seed(s, name) for s in seeds]
        effective_policy = solver.resolve_policy(policy)
        skeptical = effective_policy in ("skeptical_restart", "skeptical_abort")
        if solver.name == "ft_gmres":
            # Selective reliability is this solver's policy; its SRP
            # environment wiring is per-scenario state, so the lanes
            # run sequentially, built exactly as run() builds them.
            results = []
            faults_hits = []
            for s in range(n_scenarios):
                params = {
                    "tol": tol,
                    "outer_maxiter": min(maxiter, 50),
                    "inner_maxiter": 20,
                    "fault_probability": fault_p,
                    "bit_range": fault_bits,
                    "seed": fault_seeds[s],
                }
                if soft_model is not None and soft_model.kind != "bitflip":
                    params["environment"] = soft_model.environment(
                        seed=fault_seeds[s]
                    )
                policy_options = (
                    {"operator_norm": trusted_norms[s]} if skeptical else None
                )
                result = solver.solve(
                    matrix, b_list[s], policy=policy,
                    policy_options=policy_options, **params,
                )
                results.append(result)
                faults_hits.append(
                    int(result.info["srp_summary"]["faults_injected"])
                )
        else:
            environments = None
            operators = None
            if soft_model is not None:
                environments = [
                    soft_model.environment(seed=fs) for fs in fault_seeds
                ]
                operators = [
                    env.unreliable_operator(
                        matrix.matvec, flops_per_call=2.0 * matrix.nnz
                    )
                    for env in environments
                ]
            # Per-lane ||A|| estimates ride as lane parameters (the
            # shared policy_options route cannot hold per-lane values).
            lane_params = (
                [{"operator_norm": tn} for tn in trusted_norms]
                if skeptical
                else None
            )
            results = batch_solve(
                name, matrix, b_list, policy=policy, lane_params=lane_params,
                operators=operators, registry=registry, tol=tol, maxiter=maxiter,
            )
            if environments is not None:
                faults_hits = [env.faults_injected() for env in environments]
            else:
                faults_hits = [0] * n_scenarios

        for s in range(n_scenarios):
            result = results[s]
            x = np.asarray(result.x, dtype=np.float64)
            finite = bool(np.all(np.isfinite(x)))
            error = (
                float(np.linalg.norm(x - x_refs[s])) / x_ref_norms[s]
                if finite
                else float("inf")
            )
            outcome = classify_outcome(
                converged=result.converged,
                error_norm=error,
                tolerance=error_tolerance,
                detected=result.detected_faults > 0,
            )
            tables[s].add_row(
                solver.name,
                result.info["policy_name"],
                result.iterations,
                result.converged,
                faults_hits[s],
                result.detected_faults,
                f"{error:.3e}" if finite else "inf",
                outcome,
            )
            cell = counters[s]
            cell["total_faults"] += faults_hits[s]
            cell["n_detected"] += int(result.detected_faults > 0)
            cell["n_silent"] += int(outcome == "sdc")
            cell["n_correct"] += int(result.converged and error <= error_tolerance)

    out = []
    for s in range(n_scenarios):
        cell = counters[s]
        summary = {
            "n_solvers": len(names),
            "n_correct": cell["n_correct"],
            "n_detected_runs": cell["n_detected"],
            "n_silent_corruptions": cell["n_silent"],
            "total_faults_injected": cell["total_faults"],
            "policy": policy,
            "fault_probability": fault_probability if faults is None else fault_p,
        }
        parameters = {
            "grid": grid,
            "solvers": tuple(names),
            "policy": policy,
            "fault_probability": fault_probability,
            "bit_range": tuple(bit_range) if bit_range is not None else None,
            "tol": tol,
            "maxiter": maxiter,
            "error_tolerance": error_tolerance,
            "seed": seeds[s],
        }
        if faults is not None:
            summary["faults"] = fault_model.describe()
            parameters["faults"] = fault_model.describe()
        out.append(
            ExperimentResult(
                experiment="E8",
                claim=_CLAIM,
                table=tables[s],
                summary=summary,
                parameters=parameters,
            )
        )
    return out


def _bind_defaults(params: Mapping) -> dict:
    """Apply :func:`run`'s keyword defaults to one scenario's parameters."""
    bound = inspect.signature(run).bind(**dict(params))
    bound.apply_defaults()
    return dict(bound.arguments)


def _compatible(resolved: List[dict]) -> bool:
    """Whether the scenarios agree on everything except the seed."""
    reference = {k: v for k, v in resolved[0].items() if k != "seed"}
    return all(
        {k: v for k, v in p.items() if k != "seed"} == reference
        for p in resolved[1:]
    )
