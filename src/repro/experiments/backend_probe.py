"""Backend-axis probes shared by the E3/E6/E7 drivers.

When an experiment driver is given an explicit ``backend=`` spec, it
augments its (unchanged, golden-pinned) analytic results with measured
evidence from that communicator backend:

* :func:`distributed_solve` -- the *numerical anchor*: the same Krylov
  solve the driver runs sequentially, executed as a genuine SPMD
  program over the backend's distributed objects.  Returns the
  residual-norm history, which is **bit-identical** across backends
  that declare ``ordered_reduction`` (sim, shmem) -- the conformance
  suite's differential gate pins exactly that.
* :func:`measure_iteration` -- measured wall-clock per iteration of a
  pipelined-CG-shaped workload (local vector flops + one vector
  allreduce), on any backend.  The E3 driver compares sim-vs-shmem on
  the same job to quantify what running ranks as real processes with
  shared-memory payload transport buys over the simulator's
  thread-and-copy event machinery.
* :func:`measure_collectives` / :func:`alpha_beta_fit` -- measured
  collective latencies across payload sizes, and a least-squares
  alpha-beta fit; the E7 driver holds these against the machine
  model's analytic collective costs, validating that the model's
  *functional form* (latency term plus bandwidth term) describes a
  real transport, not only the simulated one.

Wall-clock numbers only ever enter result ``summary`` sections that
exist when ``backend=`` was explicitly requested, so default-backend
goldens stay byte-identical.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.registry import BoundBackend, resolve_backend

__all__ = [
    "distributed_solve",
    "measure_iteration",
    "measure_stall_scaling",
    "measure_collectives",
    "alpha_beta_fit",
]


def _solve_program(
    comm,
    solver_name: str,
    grid: int,
    tol: float,
    maxiter: int,
    seed: int,
    solver_kwargs: Dict[str, Any],
):
    """SPMD body of the distributed numerical anchor (runs on a rank)."""
    from repro.krylov.registry import default_solver_registry
    from repro.linalg.distributed import DistributedRowMatrix, DistributedVector
    from repro.linalg.matgen import poisson_2d
    from repro.utils.rng import RngFactory

    matrix = poisson_2d(grid)
    b = RngFactory(seed).spawn("rhs").standard_normal(matrix.n_rows)
    operator = DistributedRowMatrix.from_global(comm, matrix)
    rhs = DistributedVector.from_global(comm, b)
    result = default_solver_registry().get(solver_name).solve(
        operator, rhs, tol=tol, maxiter=maxiter, **solver_kwargs
    )
    return {
        "iterations": result.iterations,
        "converged": bool(result.converged),
        "residual_norms": [float(r) for r in result.residual_norms],
    }


def distributed_solve(
    backend,
    solver_name: str,
    *,
    grid: int,
    tol: float = 1e-8,
    maxiter: int = 2000,
    seed: int = 2013,
    procs: Optional[int] = None,
    **solver_kwargs: Any,
) -> Dict[str, Any]:
    """Solve the standard Poisson anchor distributed over ``backend``.

    Every rank runs the identical registry-resolved solver on the
    row-distributed operator; rank 0's view of the solve (iteration
    count, convergence flag, residual history) is returned, after
    asserting all ranks agreed on it -- an SPMD solve that *disagrees*
    across ranks is a communicator bug, not a numerical result.
    """
    bound: BoundBackend = resolve_backend(backend)
    values = bound.launch(
        _solve_program,
        solver_name,
        grid,
        tol,
        maxiter,
        seed,
        solver_kwargs,
        n_ranks=procs,
    )
    reference = values[0]
    for rank, value in enumerate(values[1:], start=1):
        if value != reference:
            raise AssertionError(
                f"rank {rank} disagrees with rank 0 on the distributed "
                f"{solver_name} solve under backend {bound.name!r}"
            )
    return dict(reference, backend=bound.spec.to_string(), procs=len(values))


def _iteration_program(comm, n_local: int, iterations: int, warmup: int):
    """Pipelined-CG-shaped timing body: local flops + vector allreduce."""
    x = np.full(n_local, 1.0 + comm.rank)
    y = np.full(n_local, 0.5)
    best = None
    for _ in range(warmup):
        y = 0.999 * y + 0.001 * x
        comm.allreduce(y)
    start = time.perf_counter()
    for _ in range(iterations):
        y = 0.999 * y + 0.001 * x  # the overlappable local work
        comm.allreduce(y)          # the synchronization being measured
    elapsed = time.perf_counter() - start
    # The job finishes when its slowest rank does.
    slowest = comm.allreduce(elapsed, op=_max_op())
    return slowest / iterations


def _max_op():
    from repro.simmpi.ops import MAX

    return MAX


def measure_iteration(
    backend,
    *,
    n_local: int = 100_000,
    iterations: int = 50,
    warmup: int = 5,
    procs: Optional[int] = None,
) -> float:
    """Measured seconds per pipelined-CG-shaped iteration on a backend."""
    bound = resolve_backend(backend)
    values = bound.launch(
        _iteration_program, n_local, iterations, warmup, n_ranks=procs
    )
    return float(values[0])


def _stall_program(
    comm,
    n_global: int,
    stall_events: int,
    stall_seconds: float,
    iterations: int,
):
    """Stall-bound SPMD timing body (runs on a rank).

    Each iteration interleaves this rank's share of the local vector
    work with its share of *real* stall events -- ``time.sleep`` calls
    standing in for the OS/device stalls E3's ``EccStallNoise`` models.
    A sleeping process genuinely yields the CPU, so on a real-process
    backend the stalls of one rank overlap the compute (and stalls) of
    the others -- the measurable core of the paper's latency-tolerance
    argument, and the one source of wall-clock speedup that does not
    require spare cores.
    """
    n_local = n_global // comm.size
    my_events = stall_events // comm.size
    x = np.full(n_local, 1.0 + comm.rank)
    y = np.full(n_local, 0.5)
    comm.barrier()
    start = time.perf_counter()
    for _ in range(iterations):
        for _ in range(my_events):
            y = 0.999 * y + 0.001 * x
            time.sleep(stall_seconds)
        comm.allreduce(float(y[0]))
    elapsed = time.perf_counter() - start
    slowest = comm.allreduce(elapsed, op=_max_op())
    return slowest / iterations


def measure_stall_scaling(
    backend,
    *,
    procs_list: Sequence[int] = (1, 4),
    n_global: int = 400_000,
    stall_events: int = 32,
    stall_seconds: float = 500e-6,
    iterations: int = 20,
) -> Dict[int, float]:
    """Measured strong scaling of the stall-bound workload.

    Returns ``{procs: seconds_per_iteration}`` for the *same global
    job* (fixed total work and fixed total stall budget) run at each
    rank count on ``backend``.  ``T(1)/T(p) > 1`` demonstrates real
    overlap: distributed ranks hide each other's stall time.
    """
    bound = resolve_backend(backend)
    timings: Dict[int, float] = {}
    for procs in procs_list:
        values = bound.launch(
            _stall_program,
            n_global,
            stall_events,
            stall_seconds,
            iterations,
            n_ranks=procs,
        )
        timings[int(procs)] = float(values[0])
    return timings


def _collective_program(comm, kinds: Sequence[str], nbytes_list: Sequence[int],
                        iterations: int):
    """Timing body for :func:`measure_collectives` (runs on a rank)."""
    timings: Dict[str, Dict[int, float]] = {}
    for kind in kinds:
        timings[kind] = {}
        for nbytes in nbytes_list:
            payload = np.zeros(max(1, nbytes // 8))
            comm.barrier()
            start = time.perf_counter()
            for _ in range(iterations):
                if kind == "allreduce":
                    comm.allreduce(payload)
                elif kind == "bcast":
                    comm.bcast(payload if comm.rank == 0 else None)
                elif kind == "barrier":
                    comm.barrier()
                else:  # pragma: no cover - caller passes known kinds
                    raise ValueError(f"unknown collective {kind!r}")
            elapsed = time.perf_counter() - start
            slowest = comm.allreduce(elapsed, op=_max_op())
            timings[kind][nbytes] = slowest / iterations
    return timings


def measure_collectives(
    backend,
    *,
    kinds: Sequence[str] = ("barrier", "allreduce", "bcast"),
    nbytes_list: Sequence[int] = (1024, 65536, 1048576),
    iterations: int = 30,
    procs: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Measured per-call collective times by kind and payload size."""
    bound = resolve_backend(backend)
    values = bound.launch(
        _collective_program, tuple(kinds), tuple(nbytes_list), iterations,
        n_ranks=procs,
    )
    return values[0]


def alpha_beta_fit(
    sizes: Sequence[int], times: Sequence[float]
) -> Tuple[float, float, float]:
    """Least-squares ``t = alpha + nbytes/bandwidth`` fit.

    Returns ``(alpha_seconds, bandwidth_bytes_per_s, r_squared)`` --
    the empirical counterparts of the machine model's ``latency`` and
    ``bandwidth`` parameters.  A high r-squared on measured collectives
    is the evidence that the model's alpha-beta functional form
    describes the real transport.
    """
    x = np.asarray(sizes, dtype=np.float64)
    y = np.asarray(times, dtype=np.float64)
    beta, alpha = np.polyfit(x, y, 1)
    predicted = alpha + beta * x
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    bandwidth = 1.0 / beta if beta > 0 else float("inf")
    return float(alpha), float(bandwidth), float(r_squared)
