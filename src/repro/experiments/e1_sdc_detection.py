"""E1 -- SDC detection in GMRES with skeptical checks.

Paper claim (§II-A, §III-A): cheap checks of mathematical properties of
the Arnoldi process detect most silent data corruption in GMRES at very
low cost, and the solver can recover by restarting.

Procedure: for each bit-position class (mantissa / exponent / sign), run
a campaign of single-bit-flip injections into the newest Krylov basis
vector of a GMRES solve on a 2-D Poisson problem, once with the
skeptical solver (:func:`repro.skeptical.gmres_sdc.sdc_detecting_gmres`)
and classify the outcomes; also report the checking overhead (check
flops relative to solver flops) and the behaviour of plain GMRES on the
same faults (how many silently wrong answers it returns).
"""

from __future__ import annotations

import inspect
from typing import List, Mapping, Optional

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.krylov.registry import batch_solve, default_solver_registry
from repro.linalg.matgen import poisson_2d
from repro.reliability.events import FaultEvent, FaultRecord
from repro.reliability.registry import resolve_faults
from repro.reliability.sdc import SdcCampaign, classify_outcome
from repro.utils.rng import RngFactory
from repro.utils.tables import Table

__all__ = ["run", "run_batch", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E1",
    name="sdc_detection",
    title="SDC detection in GMRES with skeptical checks",
    tags=("skeptical", "gmres", "faults", "sdc"),
    smoke={"grid": 8, "n_trials": 2, "inject_at": 5},
    golden={"grid": 10, "n_trials": 3, "inject_at": 5, "seed": 2013},
)

_BIT_CLASSES = {
    "mantissa_low": (0, 25),
    "mantissa_high": (26, 51),
    "exponent": (52, 62),
    "sign": (63, 63),
}


def _make_hook(fault_model, rng, inject_at):
    """The per-trial injection hook plus its draw record.

    The injection comes from the fault model's engine iteration hook
    (see :meth:`repro.reliability.models.BasisBitflipFaults.iteration_hook`),
    which replays the historical draw order exactly: bit position at
    hook creation, victim index at fire time.
    """
    if fault_model.is_null:
        return None, {"bit": None, "index": None}
    return fault_model.iteration_hook(rng, at=inject_at)


def _record_from_result(matrix, b, result, injected, detected, *, tol, skeptical):
    """Classify one finished (possibly faulty) solve into a FaultRecord."""
    x = np.asarray(result.x, dtype=np.float64)
    error = float(np.linalg.norm(matrix.matvec(x) - b) / np.linalg.norm(b))
    outcome = classify_outcome(
        converged=result.converged,
        error_norm=error,
        tolerance=10 * tol,
        detected=detected,
    )
    return FaultRecord(
        events=[FaultEvent(kind="bitflip", target="arnoldi_basis",
                           location=injected["index"], bit=injected["bit"])],
        detected=detected,
        outcome=outcome,
        extra={
            "iterations": result.iterations,
            "relative_residual": error,
            "check_flops": result.info.get("check_flops", 0.0) if skeptical else 0.0,
        },
    )


def _solve_with_injection(
    matrix, b, x_true, *, fault_model, inject_at, rng, skeptical: bool, tol: float,
    check_period: int,
):
    """One faulty run; returns a FaultRecord."""
    fault_hook, injected = _make_hook(fault_model, rng, inject_at)

    solvers = default_solver_registry()
    if skeptical:
        result = solvers.get("sdc_gmres").solve(
            matrix, b, policy="skeptical_restart", tol=tol, restart=30, maxiter=600,
            check_period=check_period, fault_hook=fault_hook,
        )
        detected = result.detected_faults > 0
    else:
        result = solvers.get("gmres").solve(
            matrix, b, tol=tol, restart=30, maxiter=600, iteration_hook=fault_hook
        )
        detected = False
    return _record_from_result(
        matrix, b, result, injected, detected, tol=tol, skeptical=skeptical
    )


def run(
    *,
    grid: int = 20,
    n_trials: int = 20,
    inject_at: int = 10,
    tol: float = 1e-8,
    check_period: int = 1,
    faults=None,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E1 and return its table.

    Parameters
    ----------
    grid:
        The Poisson problem is ``grid x grid``.
    n_trials:
        Injection trials per bit class and solver.
    inject_at:
        Iteration at which the flip is injected.
    tol:
        Solver tolerance.
    check_period:
        Period of the cheap skeptical checks (the ablation knob).
    faults:
        Injection model template (reliability-registry name, compact
        spec string or dict); each bit class instantiates it with its
        own ``bits`` range.  ``None`` keeps the legacy-equivalent
        targeted basis bit flip (``"basis_bitflip"``); ``"none"`` runs
        the whole campaign fault-free.
    seed:
        Root seed.
    """
    fault_template, faults_label = _resolve_template(faults)
    matrix = poisson_2d(grid)
    factory = RngFactory(seed)
    rng_rhs = factory.spawn("rhs")
    b = rng_rhs.standard_normal(matrix.n_rows)
    x_true = None

    baseline = default_solver_registry().get("gmres").solve(
        matrix, b, tol=tol, restart=30, maxiter=600
    )
    solver_flops = 2.0 * matrix.nnz * max(baseline.iterations, 1)

    table = _result_table()
    summary = {}
    for class_name, bit_range in _BIT_CLASSES.items():
        class_model = (
            fault_template
            if fault_template.is_null
            else fault_template.with_params(bits=bit_range)
        )
        for skeptical in (False, True):
            rng = factory.spawn(f"{class_name}-{skeptical}")

            def run_once(trial, _rng=rng, _model=class_model, _skeptical=skeptical):
                return _solve_with_injection(
                    matrix, b, x_true, fault_model=_model, inject_at=inject_at,
                    rng=_rng, skeptical=_skeptical, tol=tol, check_period=check_period,
                )

            campaign = SdcCampaign(run_once, n_trials).run(
                metadata={"bit_class": class_name, "skeptical": skeptical}
            )
            _add_cell(table, summary, campaign, class_name, skeptical, solver_flops)
    return _finish_result(
        table, summary, baseline.iterations,
        grid=grid, n_trials=n_trials, inject_at=inject_at,
        check_period=check_period, seed=seed, faults_label=faults_label,
    )


def run_batch(params_list: List[Mapping]) -> List[ExperimentResult]:
    """Run several E1 scenarios in lockstep; results identical to :func:`run`.

    The scenarios (typically one per seed) must agree on every
    parameter except ``seed``; incompatible sets fall back to
    sequential :func:`run` calls.  Each (bit-class, solver) cell of
    every trial solves all scenarios as one batched
    :func:`repro.krylov.registry.batch_solve` call, with per-scenario
    fault hooks drawing from per-scenario RNG streams in the exact
    sequential order (hook creation before the trial's solve, victim
    draw at fire time inside it).
    """
    resolved = [_bind_defaults(p) for p in params_list]
    if not resolved:
        return []
    if len(resolved) == 1 or not _compatible(resolved):
        return [run(**dict(p)) for p in params_list]

    shared = resolved[0]
    grid = shared["grid"]
    n_trials = shared["n_trials"]
    inject_at = shared["inject_at"]
    tol = shared["tol"]
    check_period = shared["check_period"]
    faults = shared["faults"]
    n_scenarios = len(resolved)

    fault_template, faults_label = _resolve_template(faults)
    matrix = poisson_2d(grid)
    factories = [RngFactory(p["seed"]) for p in resolved]
    b_list = [f.spawn("rhs").standard_normal(matrix.n_rows) for f in factories]

    baselines = batch_solve(
        "gmres", matrix, b_list, tol=tol, restart=30, maxiter=600
    )
    solver_flops = [2.0 * matrix.nnz * max(r.iterations, 1) for r in baselines]

    tables = [_result_table() for _ in range(n_scenarios)]
    summaries: List[dict] = [{} for _ in range(n_scenarios)]
    for class_name, bit_range in _BIT_CLASSES.items():
        class_model = (
            fault_template
            if fault_template.is_null
            else fault_template.with_params(bits=bit_range)
        )
        for skeptical in (False, True):
            rngs = [f.spawn(f"{class_name}-{skeptical}") for f in factories]
            records: List[List[FaultRecord]] = [[] for _ in range(n_scenarios)]
            for _trial in range(n_trials):
                hooks = []
                injected = []
                for rng in rngs:
                    hook, inj = _make_hook(class_model, rng, inject_at)
                    hooks.append(hook)
                    injected.append(inj)
                if skeptical:
                    results = batch_solve(
                        "sdc_gmres", matrix, b_list, policy="skeptical_restart",
                        tol=tol, restart=30, maxiter=600, check_period=check_period,
                        lane_params=[{"fault_hook": hook} for hook in hooks],
                    )
                    detected = [r.detected_faults > 0 for r in results]
                else:
                    results = batch_solve(
                        "gmres", matrix, b_list, tol=tol, restart=30, maxiter=600,
                        lane_params=[{"iteration_hook": hook} for hook in hooks],
                    )
                    detected = [False] * n_scenarios
                for s in range(n_scenarios):
                    records[s].append(
                        _record_from_result(
                            matrix, b_list[s], results[s], injected[s],
                            detected[s], tol=tol, skeptical=skeptical,
                        )
                    )
            for s in range(n_scenarios):
                campaign = SdcCampaign(
                    lambda trial, _records=records[s]: _records[trial], n_trials
                ).run(metadata={"bit_class": class_name, "skeptical": skeptical})
                _add_cell(
                    tables[s], summaries[s], campaign, class_name, skeptical,
                    solver_flops[s],
                )
    return [
        _finish_result(
            tables[s], summaries[s], baselines[s].iterations,
            grid=grid, n_trials=n_trials, inject_at=inject_at,
            check_period=check_period, seed=resolved[s]["seed"],
            faults_label=faults_label,
        )
        for s in range(n_scenarios)
    ]


def _bind_defaults(params: Mapping) -> dict:
    """Apply :func:`run`'s keyword defaults to one scenario's parameters."""
    bound = inspect.signature(run).bind(**dict(params))
    bound.apply_defaults()
    return dict(bound.arguments)


def _compatible(resolved: List[dict]) -> bool:
    """Whether the scenarios agree on everything except the seed."""
    reference = {k: v for k, v in resolved[0].items() if k != "seed"}
    return all(
        {k: v for k, v in p.items() if k != "seed"} == reference
        for p in resolved[1:]
    )


def _resolve_template(faults):
    """Resolve the fault axis exactly as :func:`run` historically did."""
    # Record the requested axis value (like every other driver); the
    # template below may degrade to the component E1 actually consumes.
    fault_template = resolve_faults(
        faults if faults is not None else "basis_bitflip"
    )
    faults_label = fault_template.describe() if faults is not None else None
    # Degrade gracefully on a shared fault axis: any bit-level model
    # becomes the targeted basis flip it implies, and models with no
    # bit-level component (e.g. pure proc_fail) run the campaign
    # fault-free rather than crashing the sweep.
    if not fault_template.is_null:
        basis_component = fault_template.component("basis_bitflip")
        bit_component = fault_template.component("bitflip")
        if basis_component is not None:
            fault_template = basis_component
        elif bit_component is not None:
            fault_template = resolve_faults(
                "basis_bitflip", bits=bit_component.bits
            )
        else:
            fault_template = resolve_faults("none")
    return fault_template, faults_label


def _result_table() -> Table:
    return Table(
        [
            "bit_class",
            "solver",
            "detected",
            "benign",
            "sdc",
            "crash",
            "mean_iterations",
            "check_overhead",
        ],
        title="E1: single bit flips in the GMRES Arnoldi basis",
    )


def _add_cell(table, summary, campaign, class_name, skeptical, solver_flops):
    """Fold one (bit-class, solver) campaign cell into the table/summary."""
    check_flops = campaign.mean_extra("check_flops")
    overhead = check_flops / solver_flops if solver_flops else 0.0
    table.add_row(
        class_name,
        "skeptical" if skeptical else "plain",
        campaign.detection_rate,
        campaign.rate_outcome("benign"),
        campaign.rate_outcome("sdc"),
        campaign.rate_outcome("crash"),
        campaign.mean_extra("iterations"),
        overhead if skeptical else 0.0,
    )
    key = f"{class_name}_{'skeptical' if skeptical else 'plain'}"
    summary[key + "_sdc_rate"] = campaign.rate_outcome("sdc")
    summary[key + "_detection_rate"] = campaign.detection_rate


def _finish_result(
    table, summary, baseline_iterations, *, grid, n_trials, inject_at,
    check_period, seed, faults_label,
) -> ExperimentResult:
    summary["baseline_iterations"] = baseline_iterations
    parameters = {
        "grid": grid,
        "n_trials": n_trials,
        "inject_at": inject_at,
        "check_period": check_period,
        "seed": seed,
    }
    if faults_label is not None:
        parameters["faults"] = faults_label
    return ExperimentResult(
        experiment="E1",
        claim=(
            "Cheap invariant checks in the Arnoldi process detect harmful bit flips "
            "and eliminate silent data corruption at small overhead."
        ),
        table=table,
        summary=summary,
        parameters=parameters,
    )
