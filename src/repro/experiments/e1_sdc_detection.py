"""E1 -- SDC detection in GMRES with skeptical checks.

Paper claim (§II-A, §III-A): cheap checks of mathematical properties of
the Arnoldi process detect most silent data corruption in GMRES at very
low cost, and the solver can recover by restarting.

Procedure: for each bit-position class (mantissa / exponent / sign), run
a campaign of single-bit-flip injections into the newest Krylov basis
vector of a GMRES solve on a 2-D Poisson problem, once with the
skeptical solver (:func:`repro.skeptical.gmres_sdc.sdc_detecting_gmres`)
and classify the outcomes; also report the checking overhead (check
flops relative to solver flops) and the behaviour of plain GMRES on the
same faults (how many silently wrong answers it returns).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.faults.bitflip import flip_bit_array
from repro.faults.events import FaultEvent, FaultRecord
from repro.faults.sdc import SdcCampaign, classify_outcome
from repro.krylov.registry import default_solver_registry
from repro.linalg.matgen import poisson_2d
from repro.utils.rng import RngFactory
from repro.utils.tables import Table

__all__ = ["run", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E1",
    name="sdc_detection",
    title="SDC detection in GMRES with skeptical checks",
    tags=("skeptical", "gmres", "faults", "sdc"),
    smoke={"grid": 8, "n_trials": 2, "inject_at": 5},
    golden={"grid": 10, "n_trials": 3, "inject_at": 5, "seed": 2013},
)

_BIT_CLASSES = {
    "mantissa_low": (0, 25),
    "mantissa_high": (26, 51),
    "exponent": (52, 62),
    "sign": (63, 63),
}


def _solve_with_injection(
    matrix, b, x_true, *, bit_range, inject_at, rng, skeptical: bool, tol: float,
    check_period: int,
):
    """One faulty run; returns a FaultRecord."""
    flip_bit = int(rng.integers(bit_range[0], bit_range[1] + 1))
    injected = {"done": False, "bit": flip_bit, "index": None}

    def fault_hook(state):
        if injected["done"] or state.total_iteration != inject_at:
            return
        target = np.asarray(state.basis[state.inner + 1])
        if target.size == 0:
            return
        index = int(rng.integers(0, target.size))
        flip_bit_array(target, index, flip_bit, inplace=True)
        injected["done"] = True
        injected["index"] = index

    solvers = default_solver_registry()
    if skeptical:
        result = solvers.get("sdc_gmres").solve(
            matrix, b, policy="skeptical_restart", tol=tol, restart=30, maxiter=600,
            check_period=check_period, fault_hook=fault_hook,
        )
        detected = result.detected_faults > 0
    else:
        result = solvers.get("gmres").solve(
            matrix, b, tol=tol, restart=30, maxiter=600, iteration_hook=fault_hook
        )
        detected = False
    x = np.asarray(result.x, dtype=np.float64)
    error = float(np.linalg.norm(matrix.matvec(x) - b) / np.linalg.norm(b))
    outcome = classify_outcome(
        converged=result.converged,
        error_norm=error,
        tolerance=10 * tol,
        detected=detected,
    )
    record = FaultRecord(
        events=[FaultEvent(kind="bitflip", target="arnoldi_basis",
                           location=injected["index"], bit=injected["bit"])],
        detected=detected,
        outcome=outcome,
        extra={
            "iterations": result.iterations,
            "relative_residual": error,
            "check_flops": result.info.get("check_flops", 0.0) if skeptical else 0.0,
        },
    )
    return record


def run(
    *,
    grid: int = 20,
    n_trials: int = 20,
    inject_at: int = 10,
    tol: float = 1e-8,
    check_period: int = 1,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E1 and return its table.

    Parameters
    ----------
    grid:
        The Poisson problem is ``grid x grid``.
    n_trials:
        Injection trials per bit class and solver.
    inject_at:
        Iteration at which the flip is injected.
    tol:
        Solver tolerance.
    check_period:
        Period of the cheap skeptical checks (the ablation knob).
    seed:
        Root seed.
    """
    matrix = poisson_2d(grid)
    factory = RngFactory(seed)
    rng_rhs = factory.spawn("rhs")
    b = rng_rhs.standard_normal(matrix.n_rows)
    x_true = None

    baseline = default_solver_registry().get("gmres").solve(
        matrix, b, tol=tol, restart=30, maxiter=600
    )
    solver_flops = 2.0 * matrix.nnz * max(baseline.iterations, 1)

    table = Table(
        [
            "bit_class",
            "solver",
            "detected",
            "benign",
            "sdc",
            "crash",
            "mean_iterations",
            "check_overhead",
        ],
        title="E1: single bit flips in the GMRES Arnoldi basis",
    )
    summary = {}
    for class_name, bit_range in _BIT_CLASSES.items():
        for skeptical in (False, True):
            rng = factory.spawn(f"{class_name}-{skeptical}")

            def run_once(trial, _rng=rng, _bits=bit_range, _skeptical=skeptical):
                return _solve_with_injection(
                    matrix, b, x_true, bit_range=_bits, inject_at=inject_at,
                    rng=_rng, skeptical=_skeptical, tol=tol, check_period=check_period,
                )

            campaign = SdcCampaign(run_once, n_trials).run(
                metadata={"bit_class": class_name, "skeptical": skeptical}
            )
            check_flops = campaign.mean_extra("check_flops")
            overhead = check_flops / solver_flops if solver_flops else 0.0
            table.add_row(
                class_name,
                "skeptical" if skeptical else "plain",
                campaign.detection_rate,
                campaign.rate_outcome("benign"),
                campaign.rate_outcome("sdc"),
                campaign.rate_outcome("crash"),
                campaign.mean_extra("iterations"),
                overhead if skeptical else 0.0,
            )
            key = f"{class_name}_{'skeptical' if skeptical else 'plain'}"
            summary[key + "_sdc_rate"] = campaign.rate_outcome("sdc")
            summary[key + "_detection_rate"] = campaign.detection_rate
    summary["baseline_iterations"] = baseline.iterations
    return ExperimentResult(
        experiment="E1",
        claim=(
            "Cheap invariant checks in the Arnoldi process detect harmful bit flips "
            "and eliminate silent data corruption at small overhead."
        ),
        table=table,
        summary=summary,
        parameters={
            "grid": grid,
            "n_trials": n_trials,
            "inject_at": inject_at,
            "check_period": check_period,
            "seed": seed,
        },
    )
