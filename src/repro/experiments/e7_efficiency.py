"""E7 -- Application efficiency: CPR vs local recovery at scale.

Paper claim (§I, §IV): preserving the reliable-machine illusion through
global checkpoint/restart becomes "too costly or infeasible" as systems
grow (the system MTBF shrinks like 1/P while checkpoint volume grows),
whereas resilient algorithms with local recovery keep efficiency high
and even make cheaper, less reliable machines usable.

Procedure: evaluate the first-order analytic models
(:mod:`repro.machine.efficiency`) across machine sizes for a fixed
per-node MTBF: Young/Daly-optimal CPR efficiency versus LFLR-style
local-recovery efficiency; report the machine size at which CPR
efficiency falls below 50% and the efficiency gap at the largest scale.
A second sweep varies the per-node MTBF at fixed machine size to show
the "cheaper, less reliable system" argument (the crossover MTBF below
which local recovery is required to stay efficient).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.reliability.process import system_mtbf
from repro.reliability.registry import resolve_faults
from repro.machine.efficiency import (
    cpr_efficiency,
    daly_optimal_interval,
    efficiency_crossover_mtbf,
    lflr_efficiency,
)
from repro.utils.tables import Table

__all__ = ["run", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E7",
    name="efficiency",
    title="Application efficiency: CPR vs local recovery at scale",
    tags=("cpr", "lflr", "analytic", "scaling"),
    smoke={"node_counts": (1_000, 100_000)},
    golden={
        "node_counts": (1_000, 10_000, 100_000, 1_000_000),
        "mtbf_sweep_hours": (24.0, 6.0, 1.0),
    },
)


def run(
    *,
    node_mtbf_years: float = 5.0,
    node_counts=(1_000, 10_000, 100_000, 1_000_000),
    checkpoint_time: float = 300.0,
    restart_time: float = 600.0,
    local_recovery_time: float = 2.0,
    redundancy_overhead: float = 0.02,
    mtbf_sweep_hours=(24.0, 12.0, 6.0, 3.0, 1.0),
    sweep_nodes: int = 100_000,
    faults=None,
    backend=None,
) -> ExperimentResult:
    """Run experiment E7 and return its table.

    ``faults`` (reliability-registry name, compact spec string or
    dict) supplies the per-node failure model: the ``proc_fail``
    component's MTBF overrides ``node_mtbf_years``, so campaigns sweep
    machine reliability through the same fault axis as every other
    experiment (e.g. ``"proc_fail:mtbf_years=1"``).
    """
    seconds_per_year = 365.25 * 24 * 3600.0
    node_mtbf = node_mtbf_years * seconds_per_year
    fault_model = resolve_faults(faults) if faults is not None else None
    if fault_model is not None:
        proc = fault_model.component("proc_fail")
        if proc is not None and proc.mtbf is not None:
            node_mtbf = proc.mtbf

    table = Table(
        [
            "nodes",
            "system_mtbf_hours",
            "daly_interval_s",
            "cpr_efficiency",
            "lflr_efficiency",
            "efficiency_gap",
        ],
        title="E7a: application efficiency vs machine size (Young/Daly CPR vs LFLR)",
    )
    summary = {}
    half_scale = None
    for nodes in node_counts:
        mtbf = system_mtbf(node_mtbf, nodes)
        interval = daly_optimal_interval(checkpoint_time, mtbf)
        e_cpr = cpr_efficiency(checkpoint_time, mtbf, restart_time)
        e_lflr = lflr_efficiency(local_recovery_time, mtbf, redundancy_overhead)
        table.add_row(
            nodes, mtbf / 3600.0, interval, e_cpr, e_lflr, e_lflr - e_cpr
        )
        summary[f"cpr_eff_{nodes}"] = e_cpr
        summary[f"lflr_eff_{nodes}"] = e_lflr
        if half_scale is None and e_cpr < 0.5:
            half_scale = nodes
    summary["cpr_below_half_at_nodes"] = half_scale if half_scale is not None else -1

    sweep = Table(
        ["system_mtbf_hours", "cpr_efficiency", "lflr_efficiency"],
        title="E7b: efficiency vs system MTBF (cheaper / less reliable machines)",
    )
    for hours in mtbf_sweep_hours:
        mtbf = hours * 3600.0
        sweep.add_row(
            hours,
            cpr_efficiency(checkpoint_time, mtbf, restart_time),
            lflr_efficiency(local_recovery_time, mtbf, redundancy_overhead),
        )
    crossover = efficiency_crossover_mtbf(
        checkpoint_time, local_recovery_time, restart_time, redundancy_overhead
    )
    summary["crossover_mtbf_hours"] = crossover / 3600.0
    summary["sweep_table"] = sweep.render()
    if backend is not None:
        summary["backend"] = _backend_section(backend)
    return ExperimentResult(
        experiment="E7",
        claim=(
            "Global checkpoint/restart efficiency collapses as the machine grows "
            "(system MTBF ~ 1/P), while local-recovery efficiency stays near the "
            "redundancy overhead, extending viability to cheaper, less reliable "
            "systems."
        ),
        table=table,
        summary=summary,
        parameters={
            "node_mtbf_years": node_mtbf_years,
            **({"backend": _backend_string(backend)} if backend is not None else {}),
            "node_counts": tuple(node_counts),
            "checkpoint_time": checkpoint_time,
            "restart_time": restart_time,
            "local_recovery_time": local_recovery_time,
            "redundancy_overhead": redundancy_overhead,
            "sweep_nodes": sweep_nodes,
            **({"faults": fault_model.describe()} if fault_model is not None else {}),
        },
    )


def _backend_string(backend) -> str:
    from repro.comm.registry import resolve_backend

    return resolve_backend(backend).spec.to_string()


def _backend_section(backend) -> dict:
    """Hold the machine model's collective costs against measurement.

    E7's efficiency claims rest on the analytic machine model; when a
    real backend is requested, its collectives are *measured* across
    payload sizes and fitted to the same alpha-beta form the model
    uses.  A high ``r_squared`` on the fit says the model's functional
    form (fixed latency plus a bandwidth term) describes the real
    transport; the fitted latency/bandwidth land wherever the host's
    pipes and shared memory put them, so they are reported next to the
    model's parameters rather than asserted equal.
    """
    from repro.comm.registry import resolve_backend
    from repro.experiments import backend_probe
    from repro.machine.collective_cost import allreduce_time
    from repro.machine.model import MachineModel

    bound = resolve_backend(backend)
    sizes = (1024, 65536, 1048576)
    measured = backend_probe.measure_collectives(
        bound, kinds=("barrier", "allreduce"), nbytes_list=sizes
    )
    alpha, bandwidth, r_squared = backend_probe.alpha_beta_fit(
        sizes, [measured["allreduce"][n] for n in sizes]
    )
    model = MachineModel.ideal()
    return {
        "spec": bound.spec.to_string(),
        "procs": bound.procs,
        "measured_seconds": {
            kind: {str(n): t for n, t in by_size.items()}
            for kind, by_size in measured.items()
        },
        "predicted_allreduce_seconds": {
            str(n): allreduce_time(model, bound.procs, n) for n in sizes
        },
        "alpha_beta_fit": {
            "alpha_seconds": alpha,
            "bandwidth_bytes_per_s": bandwidth,
            "r_squared": r_squared,
        },
        "model_parameters": {
            "latency": model.latency,
            "bandwidth": model.bandwidth,
        },
    }
