"""E5 -- Implicit-method state recovery from a redundant coarse model.

Paper claim (§III-C): for implicit methods, the lost local state can be
rebuilt "equivalent up to the truncation error of the PDE", e.g. from a
coarse model stored redundantly on neighbouring processes, and used to
bootstrap recovery.

Procedure: advance a backward-Euler heat solve to a failure point,
discard one rank-sized block of the solution, rebuild it three ways --
zeros (naive restart of the block), neighbour averaging, and
prolongation of the redundantly stored coarse model -- and compare (a)
the reconstruction error against the lost state and (b) the number of
extra CG iterations the next implicit step needs when warm-started from
the recovered state, sweeping the coarsening factor.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.krylov.registry import default_solver_registry
from repro.lflr.coarse import CoarseModelStore, prolong_field
from repro.pde.implicit import ImplicitHeatProblem1D
from repro.reliability.registry import resolve_faults
from repro.utils.tables import Table

__all__ = ["run", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E5",
    name="coarse_recovery",
    title="Implicit-method state recovery from a redundant coarse model",
    tags=("lflr", "implicit", "pde", "recovery"),
    smoke={"n_points": 64, "steps_before_failure": 10, "coarsening_factors": (2,)},
    golden={
        "n_points": 64,
        "steps_before_failure": 10,
        "coarsening_factors": (2, 4),
        "seed": 2013,
    },
)


def _cg_iterations_from(problem: ImplicitHeatProblem1D, guess: np.ndarray) -> int:
    """CG iterations of the next implicit step warm-started from ``guess``."""
    result = default_solver_registry().get("cg").solve(
        problem.matrix, problem.u, x0=guess, tol=problem.cg_tol,
        maxiter=10 * problem.n_points)
    if not result.converged:  # pragma: no cover - tiny SPD systems converge
        raise RuntimeError("implicit step did not converge")
    return result.iterations


def run(
    *,
    n_points: int = 128,
    n_ranks: int = 4,
    steps_before_failure: int = 20,
    dt: float = 2e-3,
    coarsening_factors=(2, 4, 8),
    faults=None,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E5 and return its table.

    ``faults`` names the hard fault whose state loss is rebuilt: the
    ``proc_fail`` component's ``rank`` parameter selects the victim
    block (e.g. ``"proc_fail:rank=2"``).  ``None`` keeps the legacy
    victim, rank 1.  Interior ranks only -- the neighbour-average
    strategy needs both neighbours.
    """
    fault_model = resolve_faults(faults) if faults is not None else None
    failed_rank = 1
    if fault_model is not None:
        proc = fault_model.component("proc_fail")
        if proc is not None and proc.rank is not None:
            failed_rank = proc.rank
    if not 1 <= failed_rank <= n_ranks - 2:
        raise ValueError(
            f"failed rank must be interior (1..{n_ranks - 2}), got {failed_rank}"
        )

    problem = ImplicitHeatProblem1D(n_points=n_points, dt=dt)
    problem.step(steps_before_failure)
    u_true = problem.u.copy()

    # The failed rank owns a contiguous block.
    block = n_points // n_ranks
    lost_lo, lost_hi = failed_rank * block, (failed_rank + 1) * block
    lost_state = u_true[lost_lo:lost_hi].copy()

    # Baseline: iterations of the next step from the intact state.
    baseline_iters = _cg_iterations_from(problem, u_true)

    def recovered_field(block_values: np.ndarray) -> np.ndarray:
        field = u_true.copy()
        field[lost_lo:lost_hi] = block_values
        return field

    strategies = {}
    strategies["zero_bootstrap"] = np.zeros(block)
    neighbor_avg = 0.5 * (u_true[lost_lo - 1] + u_true[lost_hi]) * np.ones(block)
    strategies["neighbor_average"] = neighbor_avg

    table = Table(
        [
            "strategy",
            "coarsen",
            "memory_overhead",
            "recovery_error",
            "next_step_cg_iters",
            "extra_iters",
        ],
        title="E5: rebuilding a lost block for an implicit (backward Euler) solve",
    )
    summary = {"baseline_cg_iters": baseline_iters}

    scale = float(np.linalg.norm(lost_state)) or 1.0
    for name, values in strategies.items():
        error = float(np.linalg.norm(values - lost_state)) / scale
        iters = _cg_iterations_from(problem, recovered_field(values))
        table.add_row(name, "-", 0.0, error, iters, iters - baseline_iters)
        summary[f"{name}_error"] = error
        summary[f"{name}_extra_iters"] = iters - baseline_iters

    for factor in coarsening_factors:
        store = CoarseModelStore(factor=factor)
        store.store(owner=failed_rank, field=lost_state, step=steps_before_failure)
        rebuilt = store.recover(owner=failed_rank)
        error = float(np.linalg.norm(rebuilt - lost_state)) / scale
        iters = _cg_iterations_from(problem, recovered_field(rebuilt))
        table.add_row(
            f"coarse_model", factor, store.memory_overhead(failed_rank), error, iters,
            iters - baseline_iters,
        )
        summary[f"coarse_{factor}_error"] = error
        summary[f"coarse_{factor}_extra_iters"] = iters - baseline_iters
    return ExperimentResult(
        experiment="E5",
        claim=(
            "A redundantly stored coarse model rebuilds a lost block accurately "
            "enough that the implicit solver recovers at almost no extra iteration "
            "cost, unlike naive zero or neighbour-average bootstraps."
        ),
        table=table,
        summary=summary,
        parameters={
            "n_points": n_points,
            "n_ranks": n_ranks,
            "steps_before_failure": steps_before_failure,
            "dt": dt,
            "coarsening_factors": tuple(coarsening_factors),
            "seed": seed,
            **({"faults": fault_model.describe()} if fault_model is not None else {}),
        },
    )
