"""Experiment drivers.

One module per experiment (E1-E7 of EXPERIMENTS.md plus the engine
demonstration E8); each exposes a
``run(**params)`` function returning an :class:`ExperimentResult` whose
table is exactly what the corresponding benchmark prints, plus a
module-level :class:`ExperimentSpec` named ``SPEC`` describing the
driver to the campaign registry (id, tags, smoke/golden parameter
sets).  The drivers are deliberately parameterized so the benchmarks
can run a quick configuration while the tables in EXPERIMENTS.md use a
fuller one.

:func:`iter_driver_modules` is the discovery entry point used by
:mod:`repro.campaign.registry`: it yields every module in this package
that implements the driver protocol (``SPEC`` + ``run``), so adding an
``e8_*.py`` module with both automatically makes it sweepable.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Iterator

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.experiments import (
    e1_sdc_detection,
    e2_abft,
    e3_pipelined,
    e4_lflr_vs_cpr,
    e5_coarse_recovery,
    e6_ftgmres,
    e7_efficiency,
    e8_solvers,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "iter_driver_modules",
    "e1_sdc_detection",
    "e2_abft",
    "e3_pipelined",
    "e4_lflr_vs_cpr",
    "e5_coarse_recovery",
    "e6_ftgmres",
    "e7_efficiency",
    "e8_solvers",
]


def iter_driver_modules() -> Iterator[object]:
    """Yield every experiment driver module in this package.

    A *driver module* is any submodule defining both a module-level
    ``SPEC`` (:class:`ExperimentSpec`) and a callable ``run``.  Modules
    are yielded in sorted module-name order, so discovery is
    deterministic.
    """
    package = importlib.import_module(__name__)
    for info in sorted(pkgutil.iter_modules(package.__path__), key=lambda m: m.name):
        if info.ispkg:
            continue
        module = importlib.import_module(f"{__name__}.{info.name}")
        spec = getattr(module, "SPEC", None)
        if isinstance(spec, ExperimentSpec) and callable(getattr(module, "run", None)):
            yield module
