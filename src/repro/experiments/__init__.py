"""Experiment drivers.

One module per experiment of EXPERIMENTS.md (E1-E7); each exposes a
``run(...)`` function returning an :class:`ExperimentResult` whose
table is exactly what the corresponding benchmark prints.  The drivers
are deliberately parameterized so the benchmarks can run a quick
configuration while the tables in EXPERIMENTS.md use a fuller one.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments import (
    e1_sdc_detection,
    e2_abft,
    e3_pipelined,
    e4_lflr_vs_cpr,
    e5_coarse_recovery,
    e6_ftgmres,
    e7_efficiency,
)

__all__ = [
    "ExperimentResult",
    "e1_sdc_detection",
    "e2_abft",
    "e3_pipelined",
    "e4_lflr_vs_cpr",
    "e5_coarse_recovery",
    "e6_ftgmres",
    "e7_efficiency",
]
