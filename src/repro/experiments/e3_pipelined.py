"""E3 -- Latency-tolerant (pipelined) Krylov methods under variability.

Paper claim (§II-B, §III-B): performance variability plus synchronous
collectives destroys scalability at large process counts; asynchronous
collectives let pipelined Krylov methods hide the latency and restore
scalability.

Procedure, in two parts:

1. *Numerical anchor* (simulated, small scale): solve the same SPD
   system with classic CG and pipelined CG, and the same nonsymmetric
   system with MGS-GMRES and single-reduction GMRES, confirming the
   iteration counts match (the pipelined reformulations trade
   synchronization, not convergence) and counting the global reductions
   each variant performs per iteration.
2. *Scaling model* (analytic, large scale): evaluate the per-iteration
   time of the synchronous and pipelined variants on a noisy machine
   model across process counts up to 2^20, using the reduction counts
   from part 1 -- the weak-scaling series whose divergence/flattening
   is the paper's central RBSP argument.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.krylov.registry import default_solver_registry
from repro.linalg.matgen import poisson_2d
from repro.machine.model import MachineModel
from repro.machine.noise import EccStallNoise
from repro.rbsp.variability import IterationTimeModel, scaling_study
from repro.reliability.registry import resolve_faults
from repro.reliability.seeding import derive_fault_seed
from repro.utils.rng import RngFactory
from repro.utils.tables import Table

__all__ = ["run", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E3",
    name="pipelined",
    title="Latency-tolerant (pipelined) Krylov methods under variability",
    tags=("rbsp", "pipelined", "scaling", "gmres", "cg"),
    smoke={"grid": 8, "rank_counts": (16, 1024), "iterations": 10},
    golden={
        "grid": 10,
        "rank_counts": (16, 1024, 65536),
        "iterations": 20,
        "seed": 2013,
    },
)


def run(
    *,
    grid: int = 16,
    rank_counts=(16, 256, 4096, 65536, 1048576),
    rows_per_rank: int = 10000,
    noise_event_rate: float = 10.0,
    noise_stall: float = 50e-6,
    iterations: int = 100,
    faults=None,
    backend=None,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E3 and return its table.

    ``faults`` (reliability-registry name, compact spec string or
    dict) runs every numerical-anchor solve against an unreliable
    operator built from the named fault model -- the pipelined
    reformulations' convergence equivalence can then be probed *under
    corruption*, not just clean.  ``None`` keeps the fault-free legacy
    anchors.

    ``backend`` (communicator spec string such as ``"shmem:procs=4"``,
    dict or :class:`~repro.comm.spec.CommSpec`) additionally runs the
    CG anchor *distributed* over that backend and -- for non-simulated
    backends -- measures the wall-clock per-iteration time of a
    pipelined-CG-shaped job against the simulator on the identical
    workload, quantifying what real processes with shared-memory
    payload transport buy.  ``None`` (the default) keeps the analytic
    experiment byte-identical to its golden.
    """
    fault_model = resolve_faults(faults)
    matrix = poisson_2d(grid)
    rng = RngFactory(seed).spawn("rhs")
    b = rng.standard_normal(matrix.n_rows)

    # Only the soft-fault component can corrupt an operator; a shared
    # fault axis may also carry hard-fault components E3 has no use
    # for (pure proc_fail specs run the anchors fault-free).
    soft_model = fault_model.soft_component()

    def operator_for(solver_name: str):
        # Every anchor solver gets its own independent fault stream,
        # named like E8's per-solver streams (see reliability.seeding).
        if soft_model is None:
            return matrix
        environment = soft_model.environment(
            seed=derive_fault_seed(seed, solver_name)
        )
        return environment.unreliable_operator(
            matrix.matvec, flops_per_call=2.0 * matrix.nnz
        )

    # Solvers are resolved by registry name -- the solver axis campaigns
    # sweep -- not imported; each pair shares identical settings.
    solvers = default_solver_registry()
    cg_result = solvers.get("cg").solve(
        operator_for("cg"), b, tol=1e-8, maxiter=2000
    )
    pcg_result = solvers.get("pipelined_cg").solve(
        operator_for("pipelined_cg"), b, tol=1e-8, maxiter=2000
    )
    gmres_result = solvers.get("gmres").solve(
        operator_for("gmres"), b, tol=1e-8, restart=40, maxiter=2000
    )
    pgmres_result = solvers.get("pipelined_gmres").solve(
        operator_for("pipelined_gmres"), b, tol=1e-8, restart=40, maxiter=2000
    )

    anchor = Table(
        ["solver", "iterations", "converged", "reductions_per_iter"],
        title="E3a: iteration counts and synchronization counts (simulated)",
    )
    anchor.add_row("cg", cg_result.iterations, cg_result.converged, 3)
    anchor.add_row("pipelined_cg", pcg_result.iterations, pcg_result.converged, 1)
    mgs_reductions = (
        gmres_result.iterations and
        sum(j + 2 for j in range(min(gmres_result.iterations, 40))) / min(gmres_result.iterations, 40)
    )
    pipe_waves = pgmres_result.info["reduction_waves"] / max(pgmres_result.iterations, 1)
    anchor.add_row("gmres(mgs)", gmres_result.iterations, gmres_result.converged,
                   float(mgs_reductions))
    anchor.add_row("pipelined_gmres", pgmres_result.iterations, pgmres_result.converged,
                   float(pipe_waves))

    # Analytic weak-scaling model with ECC-stall noise.
    noise = EccStallNoise(noise_event_rate, noise_stall, rng=seed)
    machine = MachineModel.leadership_class(noise=noise)
    # CG-like iteration: ~20 flops per row of local work, 3 reductions
    # synchronous vs 1 overlapped wave.
    model = IterationTimeModel(
        local_flops=20.0 * rows_per_rank,
        n_reductions=3,
        pipeline_waves=1,
        overlap_fraction=0.9,
    )
    scaling = scaling_study(machine, model, rank_counts, iterations=iterations)

    # Merge the two tables into one experiment table (scaling is primary).
    summary = {
        "cg_iterations": cg_result.iterations,
        "pipelined_cg_iterations": pcg_result.iterations,
        "gmres_iterations": gmres_result.iterations,
        "pipelined_gmres_iterations": pgmres_result.iterations,
        # Where solver time goes (matvec vs orthogonalization vs
        # preconditioner), from the per-kernel counters every solver
        # now attaches to its SolveResult.
        "kernel_seconds": {
            "cg": cg_result.info["kernels"]["seconds"],
            "pipelined_cg": pcg_result.info["kernels"]["seconds"],
            "gmres": gmres_result.info["kernels"]["seconds"],
            "pipelined_gmres": pgmres_result.info["kernels"]["seconds"],
        },
        "speedup_at_largest_p": scaling.column("speedup")[-1],
        "speedup_at_smallest_p": scaling.column("speedup")[0],
        "sync_efficiency_at_largest_p": scaling.column("sync_efficiency")[-1],
        "pipe_efficiency_at_largest_p": scaling.column("pipe_efficiency")[-1],
    }
    result = ExperimentResult(
        experiment="E3",
        claim=(
            "Synchronous collectives plus performance variability limit scalability; "
            "pipelined Krylov methods hide the latency and keep efficiency high at "
            "large process counts without changing convergence."
        ),
        table=scaling,
        summary=summary,
        parameters={
            "grid": grid,
            "rank_counts": tuple(rank_counts),
            "rows_per_rank": rows_per_rank,
            "noise_event_rate": noise_event_rate,
            "noise_stall": noise_stall,
            "seed": seed,
            **({"faults": fault_model.describe()} if faults is not None else {}),
            **({"backend": _backend_string(backend)} if backend is not None else {}),
        },
    )
    # Attach the anchor table for completeness.
    result.summary["anchor_table"] = anchor.render()
    if backend is not None:
        result.summary["backend"] = _backend_section(
            backend, grid=grid, rows_per_rank=rows_per_rank, seed=seed
        )
    return result


def _backend_string(backend) -> str:
    from repro.comm.registry import resolve_backend

    return resolve_backend(backend).spec.to_string()


def _backend_section(backend, *, grid: int, rows_per_rank: int, seed: int) -> dict:
    """Measured backend-axis evidence (only present when requested).

    Two parts: the distributed CG anchor (its residual history is what
    the conformance suite's differential gate compares bit-for-bit
    between sim and shmem), and -- when the requested backend is not
    the simulator -- a measured sim-vs-backend comparison of the
    pipelined-iteration workload at the same rank count, reported as
    ``speedup_vs_sim`` (wall-clock ratio; >1 means the real-process
    backend beats the simulator's thread-and-copy event machinery on
    the identical job).
    """
    from repro.comm.registry import resolve_backend
    from repro.experiments import backend_probe

    bound = resolve_backend(backend)
    anchor = backend_probe.distributed_solve(
        bound, "cg", grid=grid, tol=1e-8, maxiter=2000, seed=seed
    )
    section = {"spec": bound.spec.to_string(), "anchor": anchor}
    if bound.name != "sim":
        # The measurable core of the latency-tolerance claim on real
        # processes: a stall-bound job (real sleeps standing in for the
        # OS/ECC stalls EccStallNoise models) strong-scales because the
        # ranks hide each other's stall time -- even on a single-CPU
        # host, where compute itself cannot parallelize.
        scaling = backend_probe.measure_stall_scaling(
            bound, procs_list=(1, bound.procs)
        )
        t1, tp = scaling[1], scaling[bound.procs]
        section["measured"] = {
            "procs": bound.procs,
            "stall_scaling_seconds_per_iteration": scaling,
            "stall_overlap_speedup": t1 / tp if tp > 0 else float("inf"),
            # Informational: the same backend on a pure compute+
            # allreduce iteration, against the simulator on the
            # identical job (on few-core hosts the simulator's
            # in-process transport can win this one).
            "compute_seconds_per_iteration": backend_probe.measure_iteration(
                bound, n_local=rows_per_rank, iterations=30
            ),
            "sim_compute_seconds_per_iteration": backend_probe.measure_iteration(
                f"sim:procs={bound.procs}", n_local=rows_per_rank, iterations=30
            ),
        }
    return section
