"""E9 -- Sweepable preconditioners under selective reliability.

The paper's central claim -- *selective reliability* -- is that the
preconditioner is exactly the part of a flexible Krylov solve that can
run unreliably: a corrupted ``M^{-1} v`` only slows convergence, it
never corrupts a converged answer, because the reliable outer
iteration analyzes and, at worst, discards what the preconditioner
returns (conf_hpdc_Heroux13, the FT-GMRES inner/outer argument).  This
driver makes that claim a swept matrix: every requested solver from
:mod:`repro.krylov.registry` x every preconditioner from
:mod:`repro.precond` x one declarative fault spec, with the fault
routed into one of two reliability placements:

* ``target="precond"`` (the selective-reliability placement): the
  preconditioner built from the clean matrix is wrapped in
  :meth:`~repro.reliability.ReliabilityDomain.preconditioner`, so only
  ``M^{-1} v`` passes through the unreliable domain while the operator,
  the Arnoldi/CG recurrences and the updates stay reliable.
* ``target="operator"`` (the control placement): the *same* fault model
  corrupts the operator application instead -- data the solvers must
  trust -- via the fault model's selective-reliability environment,
  with the preconditioner left clean.

Everything is resolved by name: solvers through the solver registry,
preconditioners through :func:`repro.precond.resolve_preconds` (so the
``preconds`` axis takes registry names like ``"bjacobi8"`` and inline
specs like ``"ssor:omega=1.2"`` interchangeably) and faults through
:func:`repro.reliability.resolve_faults`.  Each (solver,
preconditioner) cell draws its own canonical fault stream, and each
outcome is classified against a trusted direct solution.

``fgmres`` receives the wrapped preconditioner as its variable inner
solve (``precond_param="inner_solve"``); every other solver --
including ``ft_gmres``, whose inner solve is an inner GMRES that
*applies* the preconditioner -- routes it to its ``preconditioner=``
keyword and applies it as ``M`` every iteration.  The table therefore
shows the paper's argument as data: under ``target="precond"`` the
flexible solvers stay correct (at worst slower), while under
``target="operator"`` the same fault rate degrades or destroys
convergence across the board.
"""

from __future__ import annotations

import contextlib
import inspect
from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.krylov.registry import batch_solve, default_solver_registry
from repro.linalg.matgen import poisson_2d
from repro.precond import parse_precond, resolve_preconds
from repro.reliability import unreliable
from repro.reliability.registry import resolve_faults
from repro.reliability.sdc import classify_outcome
from repro.reliability.seeding import derive_fault_seed
from repro.utils.rng import RngFactory
from repro.utils.tables import Table
from repro.utils.validation import check_in

__all__ = ["run", "run_batch", "SPEC"]

SPEC = ExperimentSpec(
    experiment="E9",
    name="precond",
    title="Sweepable preconditioners: solver x preconditioner x fault matrix "
          "under selective reliability",
    tags=("precond", "registry", "srp", "faults"),
    smoke={"grid": 6, "solvers": ("gmres", "cg"),
           "preconds": ("none", "jacobi"), "faults": "none"},
    golden={"grid": 8,
            "preconds": ("none", "jacobi", "ssor", "poly2", "bjacobi8"),
            "faults": "bitflip:p=0.05,bits=52..62", "seed": 2013},
)

# Solvers swept by default: every registry entry that takes a fixed or
# flexible preconditioner on the sequential backend and is comparable
# under one (tol, maxiter) budget.  ft_gmres/sdc_gmres still work when
# requested explicitly; they are excluded from the default sweep
# because their resilience machinery (inner budgets, skeptical
# restarts) makes their rows answer a different question.
_DEFAULT_SOLVERS = ("gmres", "fgmres", "pipelined_gmres", "cg", "pipelined_cg")


def run(
    *,
    grid: int = 8,
    solvers: Optional[Union[str, Sequence[str]]] = None,
    preconds: Optional[Union[str, Sequence[str]]] = None,
    faults=None,
    target: str = "precond",
    tol: float = 1e-8,
    maxiter: int = 400,
    error_tolerance: float = 1e-5,
    seed: int = 2013,
) -> ExperimentResult:
    """Run experiment E9 and return its table.

    Parameters
    ----------
    grid:
        2-D Poisson grid size (SPD, so every swept solver applies).
    solvers:
        Solver-registry names to run (string or sequence; ``None`` =
        the default preconditionable set).
    preconds:
        The preconditioner axis: registry names (``"jacobi"``,
        ``"bjacobi8"``) or inline specs (``"ssor:omega=1.2"``,
        ``"poly:k=4"``), string or sequence; ``None`` = every
        registered preconditioner.
    faults:
        The fault axis: a registered fault-model name, compact spec
        string, dict or :class:`~repro.reliability.spec.FaultSpec`.
        ``None`` runs fault-free.  Only the spec's soft component
        corrupts data here; hard-fault-only specs run clean.
    target:
        Where the fault lands: ``"precond"`` routes it into the
        unreliable domain wrapping ``M^{-1} v`` (selective
        reliability; the ``none`` preconditioner then runs clean, as
        its control row), ``"operator"`` corrupts the operator
        application instead with the preconditioner left clean.
    tol, maxiter:
        Solver settings (mapped onto outer/inner limits for FT-GMRES).
    error_tolerance:
        Trusted-error threshold of the outcome classification.
    seed:
        Root seed: right-hand side and per-cell fault streams.
    """
    check_in(target, ("precond", "operator"), "target")
    registry = default_solver_registry()
    if solvers is None:
        solver_list = list(_DEFAULT_SOLVERS)
    elif isinstance(solvers, str):
        solver_list = [solvers]
    else:
        solver_list = list(solvers)
    if preconds is None:
        from repro.precond import precond_names

        precond_list = precond_names()
    elif isinstance(preconds, str):
        precond_list = [preconds]
    else:
        precond_list = list(preconds)

    fault_model = resolve_faults(faults)
    soft_model = fault_model.soft_component()

    matrix = poisson_2d(grid)
    factory = RngFactory(seed)
    b = factory.spawn("rhs").standard_normal(matrix.n_rows)
    x_ref = np.linalg.solve(matrix.to_dense(), b)
    x_ref_norm = float(np.linalg.norm(x_ref))

    table = Table(
        ["solver", "precond", "iterations", "converged", "faults", "error",
         "outcome"],
        title=f"E9: solver x preconditioner x fault matrix "
              f"(faults target the {target})",
    )

    n_runs = 0
    n_correct = 0
    n_silent = 0
    total_faults = 0
    for solver_name in solver_list:
        solver = registry.get(solver_name)
        for precond_name in precond_list:
            # Setup runs in reliable mode (the SRP assumption): the
            # preconditioner is always built from the clean matrix.
            built = resolve_preconds(precond_name, matrix=matrix)
            precond_label = parse_precond(precond_name).to_string()
            fault_seed = derive_fault_seed(seed, f"{solver.name}/{precond_label}")

            params = {"tol": tol}
            if solver.name == "ft_gmres":
                params.update(outer_maxiter=min(maxiter, 50), inner_maxiter=20,
                              seed=fault_seed)
            else:
                params["maxiter"] = maxiter

            faults_hit = 0
            with np.errstate(over="ignore", invalid="ignore"):
                if soft_model is not None and target == "precond" and built is not None:
                    with unreliable(soft_model, seed=fault_seed,
                                    name=f"precond/{solver.name}") as domain:
                        wrapped = domain.preconditioner(
                            built, flops_per_call=float(matrix.nnz)
                        )
                        result = solver.solve(matrix, b, precond=wrapped, **params)
                    faults_hit = domain.faults_injected()
                elif soft_model is not None and target == "operator":
                    environment = soft_model.environment(seed=fault_seed)
                    operator = environment.unreliable_operator(
                        matrix.matvec, flops_per_call=2.0 * matrix.nnz
                    )
                    result = solver.solve(operator, b, precond=built, **params)
                    faults_hit = environment.faults_injected()
                else:
                    result = solver.solve(matrix, b, precond=built, **params)

            x = np.asarray(result.x, dtype=np.float64)
            finite = bool(np.all(np.isfinite(x)))
            error = (
                float(np.linalg.norm(x - x_ref)) / x_ref_norm
                if finite else float("inf")
            )
            outcome = classify_outcome(
                converged=result.converged,
                error_norm=error,
                tolerance=error_tolerance,
                detected=result.detected_faults > 0,
            )
            table.add_row(
                solver.name,
                precond_label,
                result.iterations,
                result.converged,
                faults_hit,
                f"{error:.3e}" if finite else "inf",
                outcome,
            )
            n_runs += 1
            total_faults += faults_hit
            n_silent += int(outcome == "sdc")
            n_correct += int(result.converged and error <= error_tolerance)

    summary = {
        "n_runs": n_runs,
        "n_solvers": len(solver_list),
        "n_preconds": len(precond_list),
        "n_correct": n_correct,
        "n_silent_corruptions": n_silent,
        "total_faults_injected": total_faults,
        "target": target,
        "faults": fault_model.describe(),
    }
    parameters = {
        "grid": grid,
        "solvers": tuple(solver_list),
        "preconds": tuple(precond_list),
        "faults": fault_model.describe(),
        "target": target,
        "tol": tol,
        "maxiter": maxiter,
        "error_tolerance": error_tolerance,
        "seed": seed,
    }
    return ExperimentResult(
        experiment="E9",
        claim=_CLAIM,
        table=table,
        summary=summary,
        parameters=parameters,
    )


_CLAIM = (
    "Selective reliability: the preconditioner is the part of a flexible "
    "Krylov solve that can run unreliably -- a corrupted M^-1 v only slows "
    "convergence, while the same fault on the trusted operator degrades "
    "or destroys the answer."
)


def run_batch(params_list: List[Mapping]) -> List[ExperimentResult]:
    """Run several E9 scenarios in lockstep; results identical to :func:`run`.

    The scenarios (typically one per seed) must agree on every
    parameter except ``seed``; incompatible sets fall back to
    sequential :func:`run` calls.  Each (solver, preconditioner) cell
    solves all scenarios as one :func:`repro.krylov.registry.batch_solve`
    call.  Selective reliability stays per-lane: every lane gets its own
    freshly built preconditioner wrapped in its own
    :func:`~repro.reliability.unreliable` domain (domains carry no
    global state, so ``S`` of them coexist), or its own fault-injecting
    operator when the fault targets the operator, each seeded exactly
    as the sequential run seeds it.  FT-GMRES runs sequentially per
    lane, built exactly as :func:`run` builds it.
    """
    resolved = [_bind_defaults(p) for p in params_list]
    if not resolved:
        return []
    if len(resolved) == 1 or not _compatible(resolved):
        return [run(**dict(p)) for p in params_list]

    shared = resolved[0]
    grid = shared["grid"]
    solvers = shared["solvers"]
    preconds = shared["preconds"]
    faults = shared["faults"]
    target = shared["target"]
    tol = shared["tol"]
    maxiter = shared["maxiter"]
    error_tolerance = shared["error_tolerance"]
    seeds = [p["seed"] for p in resolved]
    n_scenarios = len(resolved)

    check_in(target, ("precond", "operator"), "target")
    registry = default_solver_registry()
    if solvers is None:
        solver_list = list(_DEFAULT_SOLVERS)
    elif isinstance(solvers, str):
        solver_list = [solvers]
    else:
        solver_list = list(solvers)
    if preconds is None:
        from repro.precond import precond_names

        precond_list = precond_names()
    elif isinstance(preconds, str):
        precond_list = [preconds]
    else:
        precond_list = list(preconds)

    fault_model = resolve_faults(faults)
    soft_model = fault_model.soft_component()

    matrix = poisson_2d(grid)
    dense = matrix.to_dense()
    b_list = [
        RngFactory(s).spawn("rhs").standard_normal(matrix.n_rows) for s in seeds
    ]
    x_refs = [np.linalg.solve(dense, b) for b in b_list]
    x_ref_norms = [float(np.linalg.norm(x)) for x in x_refs]

    tables = [
        Table(
            ["solver", "precond", "iterations", "converged", "faults", "error",
             "outcome"],
            title=f"E9: solver x preconditioner x fault matrix "
                  f"(faults target the {target})",
        )
        for _ in range(n_scenarios)
    ]
    counters = [
        {"n_runs": 0, "n_correct": 0, "n_silent": 0, "total_faults": 0}
        for _ in range(n_scenarios)
    ]

    for solver_name in solver_list:
        solver = registry.get(solver_name)
        for precond_name in precond_list:
            # Built per lane: stateful preconditioners (and the
            # injecting domain proxies around them) must not be shared
            # across lanes, exactly as S sequential runs build S of
            # them from the clean matrix.
            builts = [
                resolve_preconds(precond_name, matrix=matrix)
                for _ in range(n_scenarios)
            ]
            precond_label = parse_precond(precond_name).to_string()
            fault_seeds = [
                derive_fault_seed(s, f"{solver.name}/{precond_label}")
                for s in seeds
            ]

            if solver.name == "ft_gmres":
                results, faults_hits = _solve_cell_sequential(
                    solver, matrix, b_list, builts, fault_seeds,
                    soft_model=soft_model, target=target, tol=tol,
                    maxiter=maxiter,
                )
            else:
                results, faults_hits = _solve_cell_batched(
                    solver, matrix, b_list, builts, fault_seeds,
                    soft_model=soft_model, target=target, tol=tol,
                    maxiter=maxiter, registry=registry,
                )

            for s in range(n_scenarios):
                result = results[s]
                x = np.asarray(result.x, dtype=np.float64)
                finite = bool(np.all(np.isfinite(x)))
                error = (
                    float(np.linalg.norm(x - x_refs[s])) / x_ref_norms[s]
                    if finite else float("inf")
                )
                outcome = classify_outcome(
                    converged=result.converged,
                    error_norm=error,
                    tolerance=error_tolerance,
                    detected=result.detected_faults > 0,
                )
                tables[s].add_row(
                    solver.name,
                    precond_label,
                    result.iterations,
                    result.converged,
                    faults_hits[s],
                    f"{error:.3e}" if finite else "inf",
                    outcome,
                )
                cell = counters[s]
                cell["n_runs"] += 1
                cell["total_faults"] += faults_hits[s]
                cell["n_silent"] += int(outcome == "sdc")
                cell["n_correct"] += int(
                    result.converged and error <= error_tolerance
                )

    out = []
    for s in range(n_scenarios):
        cell = counters[s]
        summary = {
            "n_runs": cell["n_runs"],
            "n_solvers": len(solver_list),
            "n_preconds": len(precond_list),
            "n_correct": cell["n_correct"],
            "n_silent_corruptions": cell["n_silent"],
            "total_faults_injected": cell["total_faults"],
            "target": target,
            "faults": fault_model.describe(),
        }
        parameters = {
            "grid": grid,
            "solvers": tuple(solver_list),
            "preconds": tuple(precond_list),
            "faults": fault_model.describe(),
            "target": target,
            "tol": tol,
            "maxiter": maxiter,
            "error_tolerance": error_tolerance,
            "seed": seeds[s],
        }
        out.append(
            ExperimentResult(
                experiment="E9",
                claim=_CLAIM,
                table=tables[s],
                summary=summary,
                parameters=parameters,
            )
        )
    return out


def _solve_cell_batched(
    solver, matrix, b_list, builts, fault_seeds, *,
    soft_model, target, tol, maxiter, registry,
):
    """One (solver, precond) cell for all lanes via ``batch_solve``."""
    n_scenarios = len(b_list)
    params = {"tol": tol, "maxiter": maxiter}
    with np.errstate(over="ignore", invalid="ignore"):
        if soft_model is not None and target == "precond" and builts[0] is not None:
            with contextlib.ExitStack() as stack:
                domains = [
                    stack.enter_context(
                        unreliable(soft_model, seed=fault_seeds[s],
                                   name=f"precond/{solver.name}")
                    )
                    for s in range(n_scenarios)
                ]
                wrapped = [
                    domains[s].preconditioner(
                        builts[s], flops_per_call=float(matrix.nnz)
                    )
                    for s in range(n_scenarios)
                ]
                results = batch_solve(
                    solver.name, matrix, b_list,
                    lane_params=[{"precond": w} for w in wrapped],
                    registry=registry, **params,
                )
            faults_hits = [domain.faults_injected() for domain in domains]
        elif soft_model is not None and target == "operator":
            environments = [
                soft_model.environment(seed=fs) for fs in fault_seeds
            ]
            operators = [
                env.unreliable_operator(
                    matrix.matvec, flops_per_call=2.0 * matrix.nnz
                )
                for env in environments
            ]
            results = batch_solve(
                solver.name, matrix, b_list,
                lane_params=[{"precond": built} for built in builts],
                operators=operators, registry=registry, **params,
            )
            faults_hits = [env.faults_injected() for env in environments]
        else:
            results = batch_solve(
                solver.name, matrix, b_list,
                lane_params=[{"precond": built} for built in builts],
                registry=registry, **params,
            )
            faults_hits = [0] * n_scenarios
    return results, faults_hits


def _solve_cell_sequential(
    solver, matrix, b_list, builts, fault_seeds, *,
    soft_model, target, tol, maxiter,
):
    """One (solver, precond) cell lane by lane, exactly as :func:`run`."""
    results = []
    faults_hits = []
    for s in range(len(b_list)):
        built = builts[s]
        fault_seed = fault_seeds[s]
        params = {"tol": tol}
        if solver.name == "ft_gmres":
            params.update(outer_maxiter=min(maxiter, 50), inner_maxiter=20,
                          seed=fault_seed)
        else:
            params["maxiter"] = maxiter
        faults_hit = 0
        with np.errstate(over="ignore", invalid="ignore"):
            if soft_model is not None and target == "precond" and built is not None:
                with unreliable(soft_model, seed=fault_seed,
                                name=f"precond/{solver.name}") as domain:
                    wrapped = domain.preconditioner(
                        built, flops_per_call=float(matrix.nnz)
                    )
                    result = solver.solve(matrix, b_list[s], precond=wrapped,
                                          **params)
                faults_hit = domain.faults_injected()
            elif soft_model is not None and target == "operator":
                environment = soft_model.environment(seed=fault_seed)
                operator = environment.unreliable_operator(
                    matrix.matvec, flops_per_call=2.0 * matrix.nnz
                )
                result = solver.solve(operator, b_list[s], precond=built,
                                      **params)
                faults_hit = environment.faults_injected()
            else:
                result = solver.solve(matrix, b_list[s], precond=built, **params)
        results.append(result)
        faults_hits.append(faults_hit)
    return results, faults_hits


def _bind_defaults(params: Mapping) -> dict:
    """Apply :func:`run`'s keyword defaults to one scenario's parameters."""
    bound = inspect.signature(run).bind(**dict(params))
    bound.apply_defaults()
    return dict(bound.arguments)


def _compatible(resolved: List[dict]) -> bool:
    """Whether the scenarios agree on everything except the seed."""
    reference = {k: v for k, v in resolved[0].items() if k != "seed"}
    return all(
        {k: v for k, v in p.items() if k != "seed"} == reference
        for p in resolved[1:]
    )
