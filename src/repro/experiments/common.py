"""Shared experiment infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.utils.tables import Table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """What every experiment driver returns.

    Attributes
    ----------
    experiment:
        Identifier ("E1" ... "E7").
    claim:
        One-sentence statement of the paper claim being tested.
    table:
        The reproduced table (see EXPERIMENTS.md for the recorded copy).
    summary:
        Headline scalars extracted from the table (detection rate,
        speedup at the largest scale, crossover point, ...), used by the
        tests that assert the qualitative claim holds.
    parameters:
        The parameters the experiment was run with, for provenance.
    """

    experiment: str
    claim: str
    table: Table
    summary: Dict[str, Any] = field(default_factory=dict)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable rendering (claim, parameters, table, summary)."""
        lines = [f"[{self.experiment}] {self.claim}", ""]
        if self.parameters:
            lines.append("parameters: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.parameters.items())
            ))
        lines.append(self.table.render())
        if self.summary:
            lines.append("")
            lines.append("summary: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.summary.items())
            ))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
