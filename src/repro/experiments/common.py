"""Shared experiment infrastructure.

Two pieces live here:

* :class:`ExperimentResult` -- the value every driver's ``run()``
  returns, now JSON round-trippable (:meth:`ExperimentResult.to_dict` /
  :meth:`ExperimentResult.from_dict`) so the campaign result store can
  persist it.
* :class:`ExperimentSpec` -- the registry protocol.  Each driver module
  ``e*.py`` exposes a module-level ``SPEC`` describing itself (id,
  short name, tags) plus two canonical reduced configurations: a
  ``smoke`` one for quick campaign sweeps and a ``golden`` one pinned
  by the golden regression tests.  :mod:`repro.campaign.registry`
  auto-discovers drivers by scanning this package for modules that
  define both ``SPEC`` and ``run(**params) -> ExperimentResult``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.utils.serialization import jsonify
from repro.utils.tables import Table, one_line

__all__ = ["ExperimentResult", "ExperimentSpec"]

# Parameter/summary lines longer than this are wrapped one-per-line.
_WRAP_WIDTH = 88
# Individual values longer than this force the wrapped layout too.
_WRAP_CELL = 40


def _render_mapping(label: str, mapping: Mapping[str, Any]) -> List[str]:
    """Render ``label: k=v, ...`` compactly, or aligned one-per-line.

    Multi-line values are escaped (``\\n``) so a single logical entry
    never spans physical lines; when any value is long, or the joined
    line would overflow, entries are laid out one per line with the
    keys left-aligned to a common width.
    """
    cells = [(k, one_line(str(v))) for k, v in sorted(mapping.items())]
    joined = label + ": " + ", ".join(f"{k}={v}" for k, v in cells)
    if len(joined) <= _WRAP_WIDTH and all(len(v) <= _WRAP_CELL for _, v in cells):
        return [joined]
    width = max(len(k) for k, _ in cells)
    return [label + ":"] + [f"  {k.ljust(width)} = {v}" for k, v in cells]


@dataclass
class ExperimentResult:
    """What every experiment driver returns.

    Attributes
    ----------
    experiment:
        Identifier ("E1" ... "E7").
    claim:
        One-sentence statement of the paper claim being tested.
    table:
        The reproduced table (see EXPERIMENTS.md for the recorded copy).
    summary:
        Headline scalars extracted from the table (detection rate,
        speedup at the largest scale, crossover point, ...), used by the
        tests that assert the qualitative claim holds.
    parameters:
        The parameters the experiment was run with, for provenance.
    """

    experiment: str
    claim: str
    table: Table
    summary: Dict[str, Any] = field(default_factory=dict)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable rendering (claim, parameters, table, summary)."""
        lines = [f"[{self.experiment}] {self.claim}", ""]
        if self.parameters:
            lines.extend(_render_mapping("parameters", self.parameters))
        lines.append(self.table.render())
        if self.summary:
            lines.append("")
            lines.extend(_render_mapping("summary", self.summary))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-compatible description; inverse of :meth:`from_dict`."""
        return {
            "experiment": self.experiment,
            "claim": self.claim,
            "table": self.table.to_dict(),
            "summary": jsonify(self.summary),
            "parameters": jsonify(self.parameters),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            experiment=data["experiment"],
            claim=data["claim"],
            table=Table.from_dict(data["table"]),
            summary=dict(data.get("summary", {})),
            parameters=dict(data.get("parameters", {})),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry metadata a driver module attaches to itself as ``SPEC``.

    Attributes
    ----------
    experiment:
        Canonical identifier ("E1" ... "E7").
    name:
        Short slug used in CLI listings and scenario tags
        (e.g. ``"sdc_detection"``).
    title:
        One-line human description.
    tags:
        Free-form labels campaigns can filter on
        (``campaign run --tag gmres``).
    smoke:
        Reduced parameter overrides that finish in roughly a second;
        the ``--smoke`` campaign and quick sweeps start from these.
    golden:
        Pinned parameters of the golden regression tests
        (``tests/test_goldens.py``).  Changing them invalidates the
        checked-in golden files, so treat them as frozen.
    """

    experiment: str
    name: str
    title: str = ""
    tags: Tuple[str, ...] = ()
    smoke: Mapping[str, Any] = field(default_factory=dict)
    golden: Mapping[str, Any] = field(default_factory=dict)
