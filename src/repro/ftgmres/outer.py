"""The FT-GMRES driver: reliable outer, unreliable inner.

:func:`ft_gmres` assembles the pieces: a
:class:`~repro.reliability.environment.SelectiveReliabilityEnvironment` supplies
the unreliable domain (with fault injection at the requested rate), an
:class:`~repro.ftgmres.inner.UnreliableInnerSolver` runs the bulk of
the work inside it, and the **reliable** outer loop is the solver
engine's flexible-Arnoldi configuration (flexible GMRES), whose
least-squares construction guarantees the outer residual never
increases no matter what the inner solver returns (a corrupted inner
result at worst wastes one outer iteration).

The returned :class:`~repro.krylov.result.SolveResult` carries, in
``info``, the selective-reliability accounting experiment E6 reports:
fraction of flops done unreliably, number of injected faults, and the
estimated cost versus an all-reliable (e.g. all-TMR) execution.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.ftgmres.inner import UnreliableInnerSolver
from repro.krylov.fgmres import fgmres
from repro.krylov.result import SolveResult
from repro.linalg.csr import CsrMatrix
from repro.reliability.environment import SelectiveReliabilityEnvironment
from repro.reliability.cost import ReliabilityCostModel
from repro.utils.validation import check_probability

__all__ = ["ft_gmres"]


def ft_gmres(
    matrix: Union[CsrMatrix, np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-8,
    outer_maxiter: int = 50,
    outer_restart: int = 50,
    inner_tol: float = 1e-2,
    inner_maxiter: int = 20,
    inner_restart: int = 20,
    fault_probability: float = 0.0,
    bit_range=None,
    seed: Optional[int] = None,
    preconditioner=None,
    environment: Optional[SelectiveReliabilityEnvironment] = None,
    cost_model: Optional[ReliabilityCostModel] = None,
) -> SolveResult:
    """Solve ``A x = b`` with fault-tolerant (selective-reliability) GMRES.

    Parameters
    ----------
    matrix, b, x0:
        The linear system (sequential NumPy data).
    tol:
        Outer (true) relative residual tolerance.
    outer_maxiter, outer_restart:
        Limits of the reliable outer FGMRES iteration.
    inner_tol, inner_maxiter, inner_restart:
        Parameters of each unreliable inner GMRES solve.
    fault_probability:
        Probability that any single unreliable operator application is
        corrupted by a bit flip (the E6 sweep variable).
    bit_range:
        Restrict injected flips to these bit positions (``None`` = all).
    seed:
        Seed of the injection stream.
    preconditioner:
        Optional preconditioner used inside the inner solves.
    environment, cost_model:
        Supply pre-built SRP objects (otherwise created internally).

    Returns
    -------
    SolveResult
        ``info`` contains ``inner_stats``, ``srp_summary`` and
        ``srp_cost`` alongside the usual FGMRES information.
    """
    check_probability(fault_probability, "fault_probability")
    if environment is None:
        environment = SelectiveReliabilityEnvironment(
            fault_probability=fault_probability,
            seed=seed,
            bit_range=bit_range,
            cost_model=cost_model,
        )
    inner = UnreliableInnerSolver(
        matrix,
        environment,
        inner_tol=inner_tol,
        inner_maxiter=inner_maxiter,
        inner_restart=inner_restart,
        preconditioner=preconditioner,
    )

    b = np.asarray(b, dtype=np.float64)
    nnz = matrix.nnz if isinstance(matrix, CsrMatrix) else int(np.count_nonzero(matrix))

    outer_flops = 0.0

    def reliable_operator(x: np.ndarray) -> np.ndarray:
        # The outer iteration's own operator applications run reliably.
        nonlocal outer_flops
        outer_flops += 2.0 * nnz
        if isinstance(matrix, CsrMatrix):
            return matrix.matvec(x)
        return matrix @ np.asarray(x, dtype=np.float64)

    # The reliable outer iteration is FGMRES -- i.e. the engine's
    # flexible-Arnoldi configuration, whose FlexiblePreconditioner vets
    # every inner result before it can touch the reliable outer state.
    result = fgmres(
        reliable_operator,
        b,
        x0=x0,
        tol=tol,
        restart=outer_restart,
        maxiter=outer_maxiter,
        inner_solve=inner,
    )

    # Account the outer work as reliable flops in the SRP environment so
    # the cost summary reflects the actual split.
    environment.reliable_domain.flops += outer_flops
    environment.unreliable_domain.flops += inner.inner_flops

    srp_summary = environment.summary()
    srp_cost = environment.cost_summary()
    result.info.update(
        {
            "inner_stats": inner.stats(),
            "srp_summary": srp_summary,
            "srp_cost": srp_cost,
            "outer_flops": outer_flops,
            "unreliable_fraction_flops": 1.0 - srp_summary["reliable_fraction_flops"],
        }
    )
    result.detected_faults = int(srp_summary["faults_injected"])
    return result
