"""The unreliable inner solver of FT-GMRES.

Wraps a (restarted) GMRES solve that is executed entirely inside the
SRP *unreliable* domain: every application of the operator may be
corrupted by the domain's fault injector.  The domain wiring is the
shared :class:`~repro.reliability.environment.UnreliableOperator`, so the inner
solver is just "plain GMRES on an unreliable operator" -- the
composition the paper's selective-reliability model calls for.  The
wrapper exposes the counters experiment E6 needs -- how many inner
flops were performed unreliably, how many faults were injected, and
how often the inner result was so bad that the reliable outer
iteration chose to discard it.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.krylov.gmres import gmres
from repro.linalg.csr import CsrMatrix
from repro.reliability.environment import SelectiveReliabilityEnvironment
from repro.utils.timing import KernelCounters
from repro.utils.validation import check_integer, check_positive

__all__ = ["UnreliableInnerSolver"]


class UnreliableInnerSolver:
    """A GMRES inner solve executed in the unreliable SRP domain.

    Parameters
    ----------
    matrix:
        The system matrix (CSR or dense); the inner solver approximately
        inverts it.
    environment:
        The :class:`~repro.reliability.environment.SelectiveReliabilityEnvironment`
        whose unreliable domain supplies fault injection.
    inner_tol:
        Relative tolerance of each inner solve (loose by design; the
        outer iteration supplies the accuracy).
    inner_maxiter, inner_restart:
        Iteration limits of each inner solve.
    preconditioner:
        Optional preconditioner used inside the inner solve.
    """

    def __init__(
        self,
        matrix: Union[CsrMatrix, np.ndarray],
        environment: SelectiveReliabilityEnvironment,
        *,
        inner_tol: float = 1e-2,
        inner_maxiter: int = 20,
        inner_restart: int = 20,
        preconditioner=None,
    ):
        check_positive(inner_tol, "inner_tol")
        check_integer(inner_maxiter, "inner_maxiter")
        check_integer(inner_restart, "inner_restart")
        self.matrix = matrix
        self.environment = environment
        self.inner_tol = float(inner_tol)
        self.inner_maxiter = int(inner_maxiter)
        self.inner_restart = int(inner_restart)
        self.preconditioner = preconditioner
        self.inner_solves = 0
        self.inner_iterations = 0
        self.kernels = KernelCounters()
        self._nnz = matrix.nnz if isinstance(matrix, CsrMatrix) else int(np.count_nonzero(matrix))
        self._operator = environment.unreliable_operator(
            self._apply_matrix, flops_per_call=2.0 * self._nnz
        )

    @property
    def inner_flops(self) -> float:
        """Flops performed through the unreliable operator so far."""
        return self._operator.flops

    def _apply_matrix(self, x: np.ndarray) -> np.ndarray:
        if isinstance(self.matrix, CsrMatrix):
            return self.matrix.matvec(x)
        return self.matrix @ np.asarray(x, dtype=np.float64)

    def __call__(self, v: np.ndarray) -> np.ndarray:
        """Approximately solve ``A z = v`` unreliably; return ``z``.

        This is the signature the engine's
        :class:`~repro.krylov.engine.precondition.FlexiblePreconditioner`
        expects of its ``inner_solve``, so an
        :class:`UnreliableInnerSolver` can be passed directly to
        :func:`repro.krylov.fgmres.fgmres`.
        """
        self.inner_solves += 1
        v = np.asarray(v, dtype=np.float64)
        # Fault schedules see one logical timestamp per inner solve.
        self._operator.now = float(self.inner_solves)
        result = gmres(
            self._operator,
            v,
            tol=self.inner_tol,
            restart=self.inner_restart,
            maxiter=self.inner_maxiter,
            preconditioner=self.preconditioner,
        )
        self.inner_iterations += result.iterations
        inner_kernels = result.info.get("kernels")
        if inner_kernels:
            self.kernels.merge_dict(inner_kernels)
        z = np.asarray(result.x, dtype=np.float64)
        return z

    def stats(self) -> dict:
        """Counters for experiment tables."""
        return {
            "inner_solves": self.inner_solves,
            "inner_iterations": self.inner_iterations,
            "inner_flops": self.inner_flops,
            "faults_injected": self.environment.faults_injected(),
            "inner_kernels": self.kernels.as_dict(),
        }
