"""Fault-tolerant GMRES via selective reliability (paper §III-D).

FT-GMRES (Bridges, Ferreira, Heroux, Hoemmen, "Fault-tolerant linear
solvers via selective reliability") casts the solver in an outer-inner
form: a **reliable** flexible-GMRES outer iteration wraps an
**unreliable** inner GMRES used as a variable preconditioner.  Most of
the flops and data live in the inner solver and may be corrupted by
faults; the outer iteration runs in the (small, expensive) reliable
domain, inspects what the inner solve returns, and can use or discard
it -- so convergence is preserved no matter what happens inside.

* :mod:`repro.ftgmres.inner` -- the unreliable inner solver wrapper
  (GMRES executed inside the SRP unreliable domain, with fault
  injection into its operator applications).
* :mod:`repro.ftgmres.outer` -- :func:`ft_gmres`, the user-facing
  solver combining the reliable FGMRES outer loop with the unreliable
  inner solver, plus bookkeeping of where the work went.
"""

from repro.ftgmres.inner import UnreliableInnerSolver
from repro.ftgmres.outer import ft_gmres

__all__ = ["UnreliableInnerSolver", "ft_gmres"]
