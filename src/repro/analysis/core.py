"""Data model of the static-analysis layer.

The analysis pass is built from three small pieces:

* :class:`Finding` -- one rule violation at one location, with a
  line-independent :attr:`~Finding.fingerprint` so baselines survive
  unrelated edits;
* :class:`SourceFile` -- a lazily-parsed python file plus its
  ``# repro: allow(<rule-id>)`` suppression map; and
* :class:`Baseline` -- the checked-in set of grandfathered findings
  (``scripts/analysis_baseline.json``) that the CI gate tolerates.

Suppression grammar: a comment ``# repro: allow(rule-id)`` (several
ids comma-separated) silences findings of those rules on its own line
and on the line directly below it -- so both trailing comments and
comment-above-the-statement styles work::

    conn.recv()  # repro: allow(process-safety) -- reads follow wait()

    # repro: allow(determinism) -- ledger timestamps are metadata
    stamp = time.time()

Suppressions are deliberate, reviewable markers: the verify gate fails
the moment a suppressed line loses its comment.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

__all__ = [
    "Finding",
    "SourceFile",
    "Baseline",
    "Rule",
    "SUPPRESSION_RE",
    "dotted_name",
]

# ``# repro: allow(rule-a, rule-b)`` -- optional free-text justification
# after the closing parenthesis is encouraged and ignored.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)\s*\)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation: where, what, and why it matters.

    ``line`` is 1-based.  The :attr:`fingerprint` excludes it on
    purpose: baselined findings must survive lines shifting around
    them, and a *new* violation of the same rule with the same message
    in the same file is exactly the kind of copy-paste the baseline
    should still tolerate only once it is re-recorded.
    """

    rule: str
    path: str
    line: int
    message: str

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """One python file under analysis: text, AST and suppression map."""

    def __init__(self, path: pathlib.Path, rel: str, text: Optional[str] = None):
        self.path = pathlib.Path(path)
        self.rel = rel
        if text is None:
            text = self.path.read_text(encoding="utf-8")
        self.text = text
        self.lines = text.splitlines()
        self._tree: Optional[ast.AST] = None
        self._parse_error: Optional[SyntaxError] = None
        self._suppressions: Optional[Dict[int, FrozenSet[str]]] = None

    # -- AST -----------------------------------------------------------
    @property
    def tree(self) -> Optional[ast.AST]:
        """The parsed module, or ``None`` on a syntax error.

        Unparseable files produce a dedicated ``parse-error`` finding
        from the runner rather than crashing the pass.
        """
        if self._tree is None and self._parse_error is None:
            try:
                self._tree = ast.parse(self.text)
            except SyntaxError as exc:
                self._parse_error = exc
        return self._tree

    @property
    def parse_error(self) -> Optional[SyntaxError]:
        self.tree
        return self._parse_error

    # -- suppressions --------------------------------------------------
    @property
    def suppressions(self) -> Dict[int, FrozenSet[str]]:
        """1-based line -> rule ids a comment on that line allows."""
        if self._suppressions is None:
            found: Dict[int, FrozenSet[str]] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = SUPPRESSION_RE.search(line)
                if match:
                    ids = frozenset(
                        part.strip() for part in match.group(1).split(",")
                    )
                    found[lineno] = ids
            self._suppressions = found
        return self._suppressions

    def allows(self, line: int, rule_id: str) -> bool:
        """Whether a finding of ``rule_id`` at ``line`` is suppressed.

        A suppression comment covers its own line and the line below,
        so it works both trailing a statement and on its own line above
        one.
        """
        for source_line in (line, line - 1):
            ids = self.suppressions.get(source_line)
            if ids and rule_id in ids:
                return True
        return False


@dataclass(frozen=True)
class Baseline:
    """The checked-in set of grandfathered finding fingerprints."""

    fingerprints: FrozenSet[str] = frozenset()
    path: Optional[str] = None

    @classmethod
    def load(cls, path) -> "Baseline":
        data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        entries = data.get("findings", [])
        prints = frozenset(
            Finding(
                rule=e["rule"], path=e["path"], line=0, message=e["message"]
            ).fingerprint
            for e in entries
        )
        return cls(fingerprints=prints, path=str(path))

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    @staticmethod
    def dump(findings: Iterable[Finding], path) -> None:
        """Write ``findings`` as a baseline file (sorted, line-free)."""
        entries = sorted(
            {
                (f.rule, f.path, f.message)
                for f in findings
            }
        )
        payload = {
            "comment": (
                "Grandfathered repro.analysis findings; regenerate with "
                "'python -m repro.analysis run --update-baseline'."
            ),
            "findings": [
                {"rule": rule, "path": rel, "message": message}
                for rule, rel, message in entries
            ],
        }
        pathlib.Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )


class Rule:
    """Base class of every analyzer.

    Subclasses set ``id``/``title``/``rationale`` and override one (or
    both) of the check hooks.  ``check_file`` runs once per python
    file; ``check_project`` runs once per pass with the full context
    (for rules over markdown files or cross-file contracts).  Both
    yield raw :class:`Finding` objects; the runner applies suppression
    comments and the baseline afterwards.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def check_file(self, source: SourceFile, ctx) -> Iterable[Finding]:
        return ()

    def check_project(self, ctx) -> Iterable[Finding]:
        return ()


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
