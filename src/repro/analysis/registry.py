"""Named rule registry, mirroring the solver/fault/precond registries.

Every analyzer registers here under a stable kebab-case id; the CLI
``list`` command, the ``--rules`` filter and the verify-script
self-check all read this table.  Adding a rule is: subclass
:class:`repro.analysis.core.Rule` in a module under
``repro/analysis/rules/``, then add it to :data:`_RULE_CLASSES`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.analysis.core import Rule

__all__ = ["RuleRegistry", "default_rule_registry", "rule_names", "resolve_rules"]


def _rule_classes() -> Sequence[Type[Rule]]:
    # Imported lazily so `import repro.analysis` stays cheap and rule
    # modules may import heavier subsystems (registries, executor).
    from repro.analysis.rules.deprecated import DeprecatedImportRule
    from repro.analysis.rules.determinism import DeterminismRule
    from repro.analysis.rules.docs import DocLinksRule
    from repro.analysis.rules.drivers import DriverContractRule
    from repro.analysis.rules.dtype import DtypeFlowRule
    from repro.analysis.rules.process_safety import ProcessSafetyRule
    from repro.analysis.rules.specs import SpecStringsRule

    return (
        DeterminismRule,
        SpecStringsRule,
        DriverContractRule,
        DtypeFlowRule,
        ProcessSafetyRule,
        DocLinksRule,
        DeprecatedImportRule,
    )


class RuleRegistry:
    """Index of analyzer instances, keyed by rule id."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        if rules is None:
            rules = [cls() for cls in _rule_classes()]
        self._by_id: Dict[str, Rule] = {}
        self._rules: List[Rule] = []
        for rule in rules:
            self.add(rule)

    def add(self, rule: Rule) -> None:
        if not rule.id:
            raise ValueError(f"rule {type(rule).__name__} has no id")
        if rule.id in self._by_id:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._by_id[rule.id] = rule
        self._rules.append(rule)
        self._rules.sort(key=lambda r: r.id)

    def get(self, rule_id: str) -> Rule:
        try:
            return self._by_id[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown analysis rule {rule_id!r} (known: {self.names()})"
            ) from None

    def names(self) -> List[str]:
        return [rule.id for rule in self._rules]

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._by_id


_DEFAULT: Optional[RuleRegistry] = None


def default_rule_registry() -> RuleRegistry:
    """The process-wide registry over the built-in ruleset."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = RuleRegistry()
    return _DEFAULT


def rule_names() -> List[str]:
    return default_rule_registry().names()


def resolve_rules(spec: Optional[str]) -> List[Rule]:
    """Resolve a comma-separated id list (``None`` -> every rule)."""
    registry = default_rule_registry()
    if spec is None:
        return list(registry)
    return [registry.get(part.strip()) for part in spec.split(",") if part.strip()]
