"""``python -m repro.analysis`` -- list rules, run the pass.

Commands::

    python -m repro.analysis list
    python -m repro.analysis run [PATH ...]
        [--rules id,id] [--format text|json]
        [--baseline PATH | --no-baseline] [--update-baseline]

``run`` defaults to ``src/repro`` resolved against the repository
root, and picks up the checked-in baseline
(``scripts/analysis_baseline.json``) automatically when present, so
the acceptance invocation is simply ``python -m repro.analysis run
src/repro``.  Exit status: 0 when no active (non-suppressed,
non-baselined) findings remain, 1 otherwise, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.analysis.core import Baseline
from repro.analysis.registry import default_rule_registry, resolve_rules
from repro.analysis.runner import find_repo_root, run_analysis

__all__ = ["main"]

BASELINE_RELPATH = pathlib.Path("scripts") / "analysis_baseline.json"


def _default_baseline(repo_root: pathlib.Path) -> Optional[pathlib.Path]:
    candidate = repo_root / BASELINE_RELPATH
    return candidate if candidate.exists() else None


def _cmd_list(args: argparse.Namespace) -> int:
    registry = default_rule_registry()
    if args.format == "json":
        payload = [
            {"id": rule.id, "title": rule.title, "rationale": rule.rationale}
            for rule in registry
        ]
        print(json.dumps(payload, indent=2))
        return 0
    width = max(len(rule.id) for rule in registry)
    print(f"registered analysis rules ({len(registry)}):")
    for rule in registry:
        print(f"{rule.id:<{width}}  {rule.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    repo_root = find_repo_root(
        pathlib.Path(args.paths[0]) if args.paths else pathlib.Path.cwd()
    )
    paths = [pathlib.Path(p) for p in args.paths] or [repo_root / "src" / "repro"]
    for path in paths:
        if not path.exists():
            print(f"error: no such path {path}", file=sys.stderr)
            return 2

    try:
        rules = resolve_rules(args.rules)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline = Baseline.empty()
    baseline_path: Optional[pathlib.Path]
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists() and not args.update_baseline:
            print(f"error: baseline file {baseline_path} not found", file=sys.stderr)
            return 2
    else:
        baseline_path = _default_baseline(repo_root)
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    report = run_analysis(paths, rules, baseline=baseline, repo_root=repo_root)

    if args.update_baseline:
        target = baseline_path or (repo_root / BASELINE_RELPATH)
        Baseline.dump(report.findings + report.baselined, target)
        print(
            f"baseline updated: {target} "
            f"({len(report.findings) + len(report.baselined)} findings recorded)"
        )
        return 0

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        status = "FAIL" if report.findings else "OK"
        print(
            f"analysis {status}: {len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{len(report.baselined)} baselined, "
            f"{report.files_scanned} files, "
            f"{len(report.rules_run)} rules, "
            f"{report.elapsed:.2f}s"
        )
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-native static analysis over the repro invariants",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list registered rules")
    list_cmd.add_argument("--format", choices=("text", "json"), default="text")
    list_cmd.set_defaults(func=_cmd_list)

    run_cmd = sub.add_parser("run", help="run the analysis pass")
    run_cmd.add_argument(
        "paths", nargs="*", help="files/directories to scan (default: src/repro)"
    )
    run_cmd.add_argument(
        "--rules", help="comma-separated rule ids (default: every rule)"
    )
    run_cmd.add_argument("--format", choices=("text", "json"), default="text")
    run_cmd.add_argument(
        "--baseline",
        help=f"baseline file (default: {BASELINE_RELPATH} under the repo root)",
    )
    run_cmd.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    run_cmd.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    run_cmd.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
