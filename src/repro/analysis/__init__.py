"""Repo-native static analysis: the invariants, enforced at diff time.

Every hard-won invariant of this reproduction -- bit-identical
goldens, fp64 parity, spec round-trips, the orphaned-queue-lock hazard
-- is enforced at runtime by tests and verify gates, *after* a
violation has shipped.  This package enforces them statically: an
AST-based, registry-driven lint pass (mirroring the
solver/fault/precond registry idiom) with a ``python -m
repro.analysis`` CLI, per-rule in-source suppression
(``# repro: allow(<rule-id>)``), and a checked-in baseline for
anything deliberately grandfathered.

Rules: ``determinism``, ``spec-strings``, ``driver-contract``,
``dtype-flow``, ``process-safety``, ``doc-links``,
``deprecated-import`` -- see ARCHITECTURE.md ("analysis layer").

Programmatic entry points::

    from repro.analysis import run_analysis, default_rule_registry
    report = run_analysis(["src/repro"], rules=list(default_rule_registry()))
    assert report.ok, report.findings
"""

from repro.analysis.core import Baseline, Finding, Rule, SourceFile
from repro.analysis.registry import (
    RuleRegistry,
    default_rule_registry,
    resolve_rules,
    rule_names,
)
from repro.analysis.runner import (
    AnalysisContext,
    AnalysisReport,
    find_repo_root,
    run_analysis,
)

__all__ = [
    "Finding",
    "SourceFile",
    "Baseline",
    "Rule",
    "RuleRegistry",
    "default_rule_registry",
    "rule_names",
    "resolve_rules",
    "AnalysisContext",
    "AnalysisReport",
    "run_analysis",
    "find_repo_root",
]
