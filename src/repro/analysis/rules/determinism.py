"""Rule ``determinism`` -- no ambient randomness or wall-clock reads.

The whole regression surface of this repo (goldens, chaos gate,
batch-parity gate, memoizing store) assumes a scenario's result is a
pure function of its parameters and seed.  Randomness must flow from
explicit ``numpy.random.Generator`` objects seeded via
:func:`repro.reliability.seeding.derive_seed` /
:class:`repro.utils.rng.RngFactory`; time must come from
``time.perf_counter`` (kernel counters, excluded from parity checks)
or ``time.monotonic`` (supervisor deadlines), never from calendar
clocks that leak into results.

Flagged:

* global-state numpy RNG calls (``np.random.rand`` and friends --
  anything under ``np.random`` except ``default_rng`` / ``Generator``
  / ``SeedSequence`` and the bit-generator classes);
* the stdlib ``random`` module (imports and ``random.<fn>()`` calls);
* calendar-clock reads: ``time.time()``, ``time.time_ns()``,
  ``datetime.now()`` / ``utcnow()`` / ``today()``;
* iteration order taken from a ``set`` (``for x in {...}`` /
  ``set(...)`` -- string hashing is randomized per process, so the
  order is not reproducible) and unsorted directory listings
  (``os.listdir`` / ``glob.glob`` / ``Path.iterdir`` / ``rglob`` not
  wrapped in ``sorted(...)``).

Allow-listed without a comment: a ``time.time()`` call passed directly
as a ``wall_time=`` keyword -- the ledger/metadata timestamp idiom in
``campaign/executor.py`` and ``campaign/runner.py``, which is recorded
for humans and excluded from every parity comparison.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.core import Finding, Rule, SourceFile, dotted_name

__all__ = ["DeterminismRule"]

# np.random attributes that construct explicitly-seeded streams rather
# than touching the global state.
_NP_RANDOM_OK = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

_LISTING_CALLS = {"os.listdir", "glob.glob", "glob.iglob", "os.scandir"}
_LISTING_METHODS = {"iterdir", "rglob", "glob"}


class DeterminismRule(Rule):
    id = "determinism"
    title = "no global RNG, wall clocks, or unordered iteration"
    rationale = (
        "results must be pure functions of (parameters, seed); ambient "
        "randomness or calendar time silently breaks goldens, memoization "
        "and the chaos/batch parity gates"
    )

    def check_file(self, source: SourceFile, ctx) -> Iterable[Finding]:
        tree = source.tree
        if tree is None:
            return []
        findings: List[Finding] = []

        # Calls appearing directly as a wall_time= keyword value: the
        # sanctioned metadata-timestamp idiom.
        wall_time_values: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "wall_time":
                        wall_time_values.add(keyword.value)

        # Calls whose result is consumed directly by sorted(...): the
        # directory-listing checks accept that as explicit ordering.
        sorted_args: Set[ast.AST] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("sorted", "frozenset", "set", "len")
            ):
                for arg in node.args:
                    sorted_args.add(arg)

        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                findings.extend(self._check_import(source, node))
            elif isinstance(node, ast.Call):
                findings.extend(
                    self._check_call(source, node, wall_time_values, sorted_args)
                )
            elif isinstance(node, (ast.For, ast.comprehension)):
                findings.extend(self._check_iteration(source, node, sorted_args))
        return findings

    # ------------------------------------------------------------------
    def _check_import(self, source: SourceFile, node) -> Iterable[Finding]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            modules = [node.module or ""]
        for module in modules:
            if module == "random" or module.startswith("random."):
                yield Finding(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        "stdlib 'random' is global-state RNG; use an explicit "
                        "numpy Generator seeded via reliability.seeding"
                    ),
                )

    def _check_call(
        self, source: SourceFile, node: ast.Call, wall_time_values, sorted_args
    ) -> Iterable[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        if name.startswith(("np.random.", "numpy.random.")):
            attr = name.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_OK:
                yield Finding(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"global-state RNG call {name}(); seed an explicit "
                        "Generator (np.random.default_rng / "
                        "reliability.seeding.derive_seed) instead"
                    ),
                )
        elif name.startswith("random."):
            yield Finding(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=(
                    f"stdlib global-state RNG call {name}(); use an explicit "
                    "numpy Generator instead"
                ),
            )
        elif name in _WALL_CLOCK_CALLS:
            if node in wall_time_values:
                return  # the sanctioned wall_time= metadata stamp
            yield Finding(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=(
                    f"wall-clock read {name}(); use time.perf_counter / "
                    "time.monotonic, or pass it as an excluded-from-parity "
                    "wall_time= metadata stamp"
                ),
            )
        elif name in _LISTING_CALLS and node not in sorted_args:
            yield Finding(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=(
                    f"{name}() returns files in filesystem order; wrap it in "
                    "sorted(...) for a deterministic sweep"
                ),
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
            and dotted_name(node.func.value) not in ("glob", "os")
            and node not in sorted_args
        ):
            # Path.iterdir()/glob()/rglob() not fed straight to sorted().
            yield Finding(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=(
                    f".{node.func.attr}() yields paths in filesystem order; "
                    "wrap it in sorted(...) for a deterministic sweep"
                ),
            )

    def _check_iteration(
        self, source: SourceFile, node, sorted_args
    ) -> Iterable[Finding]:
        iterable = node.iter
        is_set_literal = isinstance(iterable, (ast.Set, ast.SetComp))
        is_set_call = (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if (is_set_literal or is_set_call) and iterable not in sorted_args:
            line = getattr(node, "lineno", getattr(iterable, "lineno", 1))
            yield Finding(
                rule=self.id,
                path=source.rel,
                line=line,
                message=(
                    "iteration over a set draws hash order (randomized for "
                    "strings); iterate a sorted(...) or a tuple instead"
                ),
            )
