"""Rule ``process-safety`` -- no IPC constructs that wedge under kill.

PR 6's supervised executor exists because of one diagnosed hazard: a
``multiprocessing.Queue`` shared between killable workers wedges
silently when a worker dies holding the queue's writer lock
(SIGKILL / ``os._exit`` mid-feeder-write orphans the lock and starves
every sibling's result delivery).  The executor's design rules --
per-worker duplex pipes, multiplexed with a bounded
``connection.wait`` -- are enforced statically here so the hazard
cannot be reintroduced by a future backend or a quick script.

Flagged, in files that import :mod:`multiprocessing`:

* ``Queue()`` construction (module-level, aliased, or on a context
  object): killable workers plus a shared queue is exactly the
  orphaned-writer-lock wedge; use one duplex Pipe per worker;
* ``Pool()`` construction: bare pools bypass the SupervisedExecutor's
  timeouts, retries, checksums and ledger;
* unbounded blocking reads: zero-argument ``Connection.recv()``,
  ``poll(None)`` / ``poll(timeout=None)``, and
  ``multiprocessing.connection.wait(...)`` without a ``timeout=`` --
  a supervisor blocked forever on a dead worker's pipe is a hang, not
  a recovery.

``recv()`` directly after a readiness ``wait()``/``poll()`` is the
sanctioned pattern and gets an explicit ``# repro: allow(...)`` at its
two call sites in the executor.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.core import Finding, Rule, SourceFile, dotted_name

__all__ = ["ProcessSafetyRule"]


def _imports_multiprocessing(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name == "multiprocessing"
                or alias.name.startswith("multiprocessing.")
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "multiprocessing" or module.startswith("multiprocessing."):
                return True
    return False


def _connection_wait_aliases(tree: ast.AST) -> Set[str]:
    """Local names bound to ``multiprocessing.connection.wait``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if (node.module or "") == "multiprocessing.connection":
                for alias in node.names:
                    if alias.name == "wait":
                        aliases.add(alias.asname or alias.name)
    return aliases


class ProcessSafetyRule(Rule):
    id = "process-safety"
    title = "no shared queues, bare pools, or unbounded IPC blocking"
    rationale = (
        "a queue shared with killable workers orphans its writer lock on "
        "SIGKILL and silently wedges siblings (the PR 6 incident); "
        "supervision requires per-worker pipes and bounded waits"
    )

    def check_file(self, source: SourceFile, ctx) -> Iterable[Finding]:
        tree = source.tree
        if tree is None or not _imports_multiprocessing(tree):
            return []
        wait_aliases = _connection_wait_aliases(tree)
        findings: List[Finding] = []

        def report(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=message,
                )
            )

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            attr = name.rsplit(".", 1)[-1]

            if attr in ("Queue", "SimpleQueue", "JoinableQueue"):
                report(
                    node,
                    f"{name}() shared with killable workers orphans its "
                    "writer lock on SIGKILL and wedges sibling results "
                    "(the PR 6 hazard); use one duplex Pipe per worker "
                    "via SupervisedExecutor",
                )
            elif attr == "Pool":
                report(
                    node,
                    f"{name}() bypasses SupervisedExecutor (no timeouts, "
                    "retries, checksums or failure ledger); route work "
                    "through repro.campaign.executor instead",
                )
            elif attr == "recv" and not node.args and not node.keywords:
                report(
                    node,
                    ".recv() with no prior readiness check blocks forever "
                    "on a dead peer; gate it behind a bounded "
                    "connection.wait()/poll() first",
                )
            elif attr == "poll" and _blocks_forever(node):
                report(
                    node,
                    ".poll(None) blocks forever on a dead peer; pass a "
                    "finite timeout",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in wait_aliases
                and not any(kw.arg == "timeout" for kw in node.keywords)
                and len(node.args) < 2
            ):
                report(
                    node,
                    "multiprocessing.connection.wait() without timeout= "
                    "blocks forever when every watched worker is dead; "
                    "pass a finite timeout",
                )
        return findings


def _blocks_forever(node: ast.Call) -> bool:
    """Whether a ``.poll`` call passes an explicit ``None`` timeout."""
    candidates = list(node.args[:1]) + [
        kw.value for kw in node.keywords if kw.arg == "timeout"
    ]
    return any(
        isinstance(c, ast.Constant) and c.value is None for c in candidates
    )
