"""The built-in analyzers.

One module per rule; :mod:`repro.analysis.registry` assembles them
into the default ruleset.  See ARCHITECTURE.md ("analysis layer") for
the rule table and how to add one.
"""

from repro.analysis.rules.deprecated import DeprecatedImportRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.docs import DocLinksRule
from repro.analysis.rules.drivers import DriverContractRule
from repro.analysis.rules.dtype import DtypeFlowRule
from repro.analysis.rules.process_safety import ProcessSafetyRule
from repro.analysis.rules.specs import SpecStringsRule

__all__ = [
    "DeterminismRule",
    "SpecStringsRule",
    "DriverContractRule",
    "DtypeFlowRule",
    "ProcessSafetyRule",
    "DocLinksRule",
    "DeprecatedImportRule",
]
