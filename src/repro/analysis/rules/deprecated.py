"""Rule ``deprecated-import`` -- no new imports of the PR 4 shims.

``repro.faults`` and ``repro.srp`` are DeprecationWarning shims over
:mod:`repro.reliability`; internal code was swept in PR 4 and must not
regress.  The shims themselves stay (external users may still import
them) and the tests that assert the shims *warn* keep importing them
deliberately -- those sites carry ``# repro: allow(deprecated-import)``
comments.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["DeprecatedImportRule"]

_SHIM_PREFIXES = ("repro.faults", "repro.srp")


def _is_shim_module(rel: str) -> bool:
    return rel.startswith(("src/repro/faults/", "src/repro/srp/")) or (
        "/repro/faults/" in rel or "/repro/srp/" in rel
    )


class DeprecatedImportRule(Rule):
    id = "deprecated-import"
    title = "no imports of the repro.faults / repro.srp shims"
    rationale = (
        "the shims exist for external callers only; internal imports "
        "resurrect two names for every concept and skip the unified "
        "reliability API"
    )

    def check_file(self, source: SourceFile, ctx) -> Iterable[Finding]:
        if _is_shim_module(source.rel):
            return []  # the shims may (and must) reference themselves
        tree = source.tree
        if tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(tree):
            modules = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                modules = [node.module or ""]
            for module in modules:
                if module in _SHIM_PREFIXES or module.startswith(
                    tuple(p + "." for p in _SHIM_PREFIXES)
                ):
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"import of deprecated shim {module!r}; "
                                "import from repro.reliability instead"
                            ),
                        )
                    )
        return findings
