"""Rule ``doc-links`` -- no dangling relative links in tracked *.md.

Consolidates the ad-hoc checker that used to live inline in
``scripts/verify.sh`` into the lint pass, so a moved or renamed
document fails the same gate (and the same baseline/report machinery)
as every other finding.

External links (``http://``, ``https://``, ``mailto:``) and pure
``#anchor`` references are skipped; relative targets must exist on
disk.  Anchors on relative targets are checked for file existence
only.  The regex matches every ``](target)`` rather than whole
``[text](target)`` links on purpose: link text may itself contain
brackets (badges, ``[![CI](img)](url)``), and a checker that skips
those waves dangling targets through.
"""

from __future__ import annotations

import re
from typing import Iterable, List

from repro.analysis.core import Finding, Rule

__all__ = ["DocLinksRule"]

_LINK_RE = re.compile(r"\]\(([^)\s]+)\)")


class DocLinksRule(Rule):
    id = "doc-links"
    title = "relative markdown links resolve to files on disk"
    rationale = (
        "README/ARCHITECTURE/CAMPAIGNS cross-reference heavily; a dangling "
        "link is doc rot the reader hits before any test would"
    )

    def check_project(self, ctx) -> Iterable[Finding]:
        findings: List[Finding] = []
        for path in ctx.markdown_files():
            rel = ctx.rel(path)
            text = path.read_text(encoding="utf-8")
            for lineno, line in enumerate(text.splitlines(), start=1):
                for match in _LINK_RE.finditer(line):
                    target = match.group(1)
                    if target.startswith(("http://", "https://", "mailto:", "#")):
                        continue
                    relative = target.split("#", 1)[0]
                    if not relative:
                        continue
                    if not (path.parent / relative).exists():
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=rel,
                                line=lineno,
                                message=f"dangling relative link -> {target}",
                            )
                        )
        return findings
