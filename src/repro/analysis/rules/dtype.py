"""Rule ``dtype-flow`` -- no implicit fp64 promotion in kernel paths.

The PR 8 mixed-precision layer parameterizes the kernel layer
(``krylov/ops.py``, ``linalg/``, ``krylov/engine/``) over a template
dtype: fp32 solves must stay fp32 end to end (that is where the
measured 1.9-2.1x bandwidth win comes from) and the fp64 path must
stay bit-identical to the pre-precision goldens.  Both invariants die
silently when an intermediate array is allocated at numpy's fp64
default and the computation quietly widens.

Flagged, in kernel-path files only:

* ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full`` without an
  explicit ``dtype=`` -- the allocation silently lands on fp64
  regardless of the template dtype flowing through the caller;
* ``np.dot`` / ``np.vdot`` / ``np.inner`` / ``np.matmul`` where
  exactly one operand is an ``.astype(...)`` cast -- a mixed-dtype
  product promotes to the wider type and hides the narrow operand's
  precision;
* float literals folded into arithmetic inside functions that take a
  ``dtype`` parameter -- the template-dtype kernels; combine literals
  through ``ops.as_float`` or dtype-typed scalars instead.

Kernel-path files are those under ``linalg/`` or ``krylov/engine/``
plus ``krylov/ops.py``; everywhere else numpy's fp64 default is the
intended behavior and stays unflagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.core import Finding, Rule, SourceFile, dotted_name

__all__ = ["DtypeFlowRule"]

_ALLOCATORS = {"zeros", "empty", "ones", "full"}
_PRODUCTS = {"dot", "vdot", "inner", "matmul"}


def _in_kernel_path(rel: str) -> bool:
    parts = rel.split("/")
    if "linalg" in parts[:-1]:
        return True
    if "krylov" in parts:
        if "engine" in parts[parts.index("krylov"):]:
            return True
        if parts[-1] == "ops.py":
            return True
    return False


def _is_astype_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "astype"
    )


class DtypeFlowRule(Rule):
    id = "dtype-flow"
    title = "kernel-path allocations and products carry explicit dtypes"
    rationale = (
        "implicit fp64 promotion breaks both the fp64-parity gate (silent "
        "behavior change) and the fp16/fp32 storage win (silent widening)"
    )

    def check_file(self, source: SourceFile, ctx) -> Iterable[Finding]:
        if not _in_kernel_path(source.rel):
            return []
        tree = source.tree
        if tree is None:
            return []
        findings: List[Finding] = []

        # Functions parameterized over a template dtype: the scope in
        # which bare float literals are a promotion hazard.
        dtype_functions: Set[ast.FunctionDef] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                params = {
                    a.arg
                    for a in (
                        *node.args.posonlyargs,
                        *node.args.args,
                        *node.args.kwonlyargs,
                    )
                }
                if "dtype" in params:
                    dtype_functions.add(node)

        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            is_numpy = name.startswith(("np.", "numpy."))
            if is_numpy and tail in _ALLOCATORS:
                has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
                # np.full's third positional argument is dtype.
                if tail == "full" and len(node.args) >= 3:
                    has_dtype = True
                if not has_dtype:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"{name}() without dtype= allocates fp64 "
                                "regardless of the template dtype; pass the "
                                "dtype explicitly"
                            ),
                        )
                    )
            elif is_numpy and tail in _PRODUCTS and len(node.args) >= 2:
                casts = [_is_astype_call(arg) for arg in node.args[:2]]
                if casts.count(True) == 1:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.rel,
                            line=node.lineno,
                            message=(
                                f"{name}() mixes a cast operand with an "
                                "uncast one; the product silently promotes "
                                "to the wider dtype -- cast both sides"
                            ),
                        )
                    )

        for fn in dtype_functions:
            for node in ast.walk(fn):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op,
                    (ast.Mult, ast.Div, ast.Add, ast.Sub, ast.Pow),
                ):
                    operands = (node.left, node.right)
                    has_float_literal = any(
                        isinstance(op, ast.Constant) and isinstance(op.value, float)
                        for op in operands
                    )
                    has_name = any(
                        isinstance(op, (ast.Name, ast.Attribute, ast.Subscript))
                        for op in operands
                    )
                    if has_float_literal and has_name:
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=source.rel,
                                line=node.lineno,
                                message=(
                                    "bare float literal combined with a value "
                                    "in a dtype-parameterized kernel; route it "
                                    "through ops.as_float or a dtype-typed "
                                    "scalar to keep the template dtype"
                                ),
                            )
                        )
        return findings
