"""Rule ``spec-strings`` -- every quoted spec must parse today.

Fault, preconditioner, precision, chaos and communicator-backend
configurations travel as compact spec strings
(``"bitflip:p=0.02,bits=52..62"``, ``"shmem:procs=8"``); campaigns,
drivers, docstrings and the CAMPAIGNS.md grammar tables all quote
them.  A renamed kind or parameter silently turns those strings into
runtime failures (or, worse, into docs describing a grammar the
parsers no longer accept).  This rule extracts every such literal and
validates it against the *live* registries and parsers, so spec drift
fails at lint time.

Collected from python sources:

* literal arguments of the spec entry points
  (``resolve_faults`` / ``FaultSpec.parse`` / ``parse_precond`` /
  ``resolve_preconds`` / ``PrecondSpec.parse`` / ``parse_precision`` /
  ``resolve_precisions`` / ``PrecisionSpec.parse`` /
  ``ChaosSpec.parse`` / ``CommSpec.parse`` / ``resolve_backend``);
* literal values of ``faults=`` / ``precond=`` / ``precision=`` /
  ``chaos=`` / ``backend=`` keywords in any call;
* literal values under the ``"faults"`` / ``"precond(s)"`` /
  ``"precision(s)"`` / ``"chaos"`` keys of dict literals (the builtin
  campaign sweeps);
* spec-shaped tokens in docstrings.

Collected from markdown: backtick spans and double-quoted tokens in
every tracked ``*.md`` file whose leading segment names a known spec
kind and that carries at least one ``name=value`` parameter.

Fault and chaos strings are validated for grammar plus kind existence;
preconditioner and precision strings additionally validate parameter
names through their spec constructors.  Bare registry names
(``"bitflip_mantissa"``, ``"poly2"``, ``"fp32_fp16"``) resolve through
the same registries the runtime uses.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.core import Finding, Rule, SourceFile, dotted_name

__all__ = ["SpecStringsRule"]

# Spec flavours by the call that consumes them.
_CALL_FLAVOURS = {
    "resolve_faults": "fault",
    "FaultSpec.parse": "fault",
    "parse_precond": "precond",
    "resolve_preconds": "precond",
    "build_preconditioner": "precond",
    "PrecondSpec.parse": "precond",
    "parse_precision": "precision",
    "resolve_precisions": "precision",
    "PrecisionSpec.parse": "precision",
    "ChaosSpec.parse": "chaos",
    "CommSpec.parse": "comm",
    "resolve_backend": "comm",
}

# Spec flavours by keyword-argument / dict-key name.
_KEY_FLAVOURS = {
    "faults": "fault",
    "precond": "precond",
    "preconds": "precond",
    "precision": "precision",
    "precisions": "precision",
    "chaos": "chaos",
    "backend": "comm",
}

# A doc token must look like KIND:NAME=VALUE[,...] (optionally
# "+"-composed) before we bother dispatching it to a parser.
_DOC_TOKEN_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*:[^:\s]*=")
_BACKTICK_RE = re.compile(r"`([^`\n]+)`")
_QUOTED_RE = re.compile(r'"([^"\s]+)"')


class _Validators:
    """Live-registry validation, loaded once per process.

    Importing the registries is what makes this rule *registry-driven*:
    a kind deleted from ``MODEL_KINDS`` or a parameter dropped from
    ``PRECOND_KINDS`` immediately invalidates every string that used
    it, in code and docs alike.
    """

    def __init__(self) -> None:
        from repro.campaign.executor import CHAOS_KINDS, ChaosSpec
        from repro.comm.spec import COMM_KINDS, CommSpec
        from repro.precond.registry import default_precond_registry
        from repro.precond.spec import PRECOND_KINDS, PrecondSpec
        from repro.reliability.models import MODEL_KINDS
        from repro.reliability.precision import (
            PRECISION_KINDS,
            PrecisionSpec,
            default_precision_registry,
        )
        from repro.reliability.registry import default_fault_registry
        from repro.reliability.spec import FaultSpec

        self._fault_spec = FaultSpec
        self._precond_spec = PrecondSpec
        self._precision_spec = PrecisionSpec
        self._chaos_spec = ChaosSpec
        self._comm_spec = CommSpec
        self._fault_kinds = set(MODEL_KINDS)
        self._fault_names = {e.name for e in default_fault_registry()}
        self._precond_names = {e.name for e in default_precond_registry()}
        self._precision_names = {e.name for e in default_precision_registry()}
        # kind -> flavour, for dispatching doc tokens.
        self.kind_flavours: Dict[str, str] = {}
        for kind in MODEL_KINDS:
            self.kind_flavours[kind] = "fault"
        for kind in PRECOND_KINDS:
            self.kind_flavours.setdefault(kind, "precond")
        for kind in PRECISION_KINDS:
            self.kind_flavours.setdefault(kind, "precision")
        for kind in CHAOS_KINDS:
            self.kind_flavours.setdefault(kind, "chaos")
        for kind in COMM_KINDS:
            self.kind_flavours.setdefault(kind, "comm")

    def validate(self, flavour: str, text: str) -> Optional[str]:
        """``None`` when ``text`` is a valid ``flavour`` spec, else why not."""
        try:
            if flavour == "fault":
                if text in self._fault_names:
                    return None
                spec = self._fault_spec.parse(text)
                components = (
                    spec.children if spec.kind == "compose" else (spec,)
                )
                for component in components:
                    if component.kind not in self._fault_kinds:
                        return (
                            f"unknown fault kind {component.kind!r} "
                            f"(known: {sorted(self._fault_kinds)})"
                        )
            elif flavour == "precond":
                if text in self._precond_names:
                    return None
                self._precond_spec.parse(text)
            elif flavour == "precision":
                if text in self._precision_names:
                    return None
                self._precision_spec.parse(text)
            elif flavour == "chaos":
                self._chaos_spec.parse(text)
            elif flavour == "comm":
                self._comm_spec.parse(text)
            else:  # pragma: no cover - registry misconfiguration
                return f"unknown spec flavour {flavour!r}"
        except (ValueError, TypeError) as exc:
            return str(exc)
        return None


_VALIDATORS: Optional[_Validators] = None


def _validators() -> _Validators:
    global _VALIDATORS
    if _VALIDATORS is None:
        _VALIDATORS = _Validators()
    return _VALIDATORS


def _direct_strings(node: ast.AST) -> Iterable[Tuple[str, int]]:
    """String literals that *are* the value (not merely inside it).

    Walking every descendant would misread dict keys and helper-call
    arguments (``params.pop("faults", ...)``, ``{"kind": ...}``) as
    spec strings; only constants, literal collections and conditional
    branches actually flow into the parsers verbatim.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        yield node.value, node.lineno
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            yield from _direct_strings(element)
    elif isinstance(node, ast.IfExp):
        yield from _direct_strings(node.body)
        yield from _direct_strings(node.orelse)
    elif isinstance(node, ast.BoolOp):
        for value in node.values:
            yield from _direct_strings(value)


class SpecStringsRule(Rule):
    id = "spec-strings"
    title = (
        "quoted fault/precond/precision/chaos/backend specs parse "
        "against live registries"
    )
    rationale = (
        "spec strings in campaigns, drivers and docs are executable "
        "configuration; drift against the registries must fail at lint "
        "time, not mid-sweep"
    )

    # -- python sources ------------------------------------------------
    def check_file(self, source: SourceFile, ctx) -> Iterable[Finding]:
        if "analysis" in source.rel.split("/"):
            # The analyzers' own tables quote key names ("faults",
            # "precond") as data about the grammar, not as specs.
            return []
        tree = source.tree
        if tree is None:
            return []
        validators = _validators()
        findings: List[Finding] = []

        def check(flavour: str, text: str, line: int, context: str) -> None:
            error = validators.validate(flavour, text)
            if error is not None:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.rel,
                        line=line,
                        message=(
                            f"invalid {flavour} spec {text!r} ({context}): {error}"
                        ),
                    )
                )

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                flavour = None
                if name is not None:
                    tail = name.split(".")
                    # Match both bare names and dotted access, incl.
                    # "FaultSpec.parse" via its last two segments.
                    flavour = _CALL_FLAVOURS.get(tail[-1]) or _CALL_FLAVOURS.get(
                        ".".join(tail[-2:])
                    )
                if flavour and node.args:
                    for text, line in _direct_strings(node.args[0]):
                        check(flavour, text, line, f"argument of {name}")
                for keyword in node.keywords:
                    key_flavour = _KEY_FLAVOURS.get(keyword.arg or "")
                    if key_flavour:
                        for text, line in _direct_strings(keyword.value):
                            check(
                                key_flavour, text, line,
                                f"{keyword.arg}= keyword",
                            )
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value in _KEY_FLAVOURS
                    ):
                        for text, line in _direct_strings(value):
                            check(
                                _KEY_FLAVOURS[key.value], text, line,
                                f"{key.value!r} dict entry",
                            )
            elif isinstance(
                node,
                (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                docstring = ast.get_docstring(node, clean=False)
                if docstring:
                    body = node.body[0]
                    base_line = getattr(body, "lineno", 1)
                    for token in _doc_tokens(docstring):
                        flavour = _token_flavour(token, validators)
                        if flavour:
                            check(flavour, token, base_line, "docstring example")
        return findings

    # -- markdown ------------------------------------------------------
    def check_project(self, ctx) -> Iterable[Finding]:
        validators = _validators()
        findings: List[Finding] = []
        for path in ctx.markdown_files():
            text = path.read_text(encoding="utf-8")
            rel = ctx.rel(path)
            for token, line in _doc_tokens_with_lines(text):
                flavour = _token_flavour(token, validators)
                if flavour is None:
                    continue
                error = validators.validate(flavour, token)
                if error is not None:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=rel,
                            line=line,
                            message=(
                                f"invalid {flavour} spec {token!r} "
                                f"(documentation): {error}"
                            ),
                        )
                    )
        return findings


def _doc_tokens(text: str) -> List[str]:
    """Spec-shaped candidate tokens in free-form documentation text."""
    tokens: List[str] = []
    spans = [m.group(1) for m in _BACKTICK_RE.finditer(text)]
    spans.extend(m.group(1) for m in _QUOTED_RE.finditer(text))
    for span in spans:
        candidates = [span.strip().strip('"')]
        candidates.extend(m.group(1) for m in _QUOTED_RE.finditer(span))
        for candidate in candidates:
            # "..." marks a schematic placeholder ("bitflip:p=...")
            # in docstrings -- a grammar sketch, not a concrete spec.
            if _DOC_TOKEN_RE.match(candidate) and "..." not in candidate:
                tokens.append(candidate)
    return tokens


def _doc_tokens_with_lines(text: str) -> List[Tuple[str, int]]:
    found: List[Tuple[str, int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for token in _doc_tokens(line):
            found.append((token, lineno))
    return found


def _token_flavour(token: str, validators: _Validators) -> Optional[str]:
    """Dispatch a doc token to a flavour by its leading kind, if known."""
    kind = token.split(":", 1)[0].split("+", 1)[0].lower()
    return validators.kind_flavours.get(kind)
