"""Rule ``driver-contract`` -- experiment drivers honor the protocol.

The campaign layer auto-discovers drivers through a structural
protocol (module-level ``SPEC = ExperimentSpec(...)`` plus
``run(**params)``; see :mod:`repro.campaign.registry`).  Nothing
checks the protocol until a sweep actually touches the driver, so a
renamed parameter or a ``smoke={...}`` key that ``run()`` no longer
accepts only explodes mid-campaign.  This rule enforces the contract
statically on every ``experiments/e*.py`` module:

* ``SPEC`` exists and is a literal ``ExperimentSpec(...)`` call;
* ``run`` exists, takes no ``*args``/``**kwargs`` (they would defeat
  the registry's parameter validation), and every parameter carries a
  default -- a bare ``run()`` must be callable, which is what the
  smoke campaign and the benchmark harness rely on;
* every key of the ``smoke=`` and ``golden=`` literal dicts names a
  ``run()`` parameter;
* ``SPEC``'s ``experiment=`` id matches the module filename prefix
  (``e8_solvers.py`` must declare ``"E8"``);
* ``run_batch``, when exported, takes ``params_list`` first and no
  other required parameters -- the lockstep batch entry point the
  runner's ``--batch`` grouping calls as ``run_batch(params_list)``,
  so its surface must stay a superset of what ``run`` needs with
  everything extra defaulted.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["DriverContractRule"]

_DRIVER_FILE_RE = re.compile(r"^(e\d+)_[a-z0-9_]+\.py$")


def _is_driver(source: SourceFile) -> Optional[str]:
    """The experiment id prefix ("e8") when the file is a driver module."""
    parts = source.rel.split("/")
    if "experiments" not in parts[:-1]:
        return None
    match = _DRIVER_FILE_RE.match(parts[-1])
    return match.group(1) if match else None


def _param_names(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def _required_params(fn: ast.FunctionDef) -> List[str]:
    """Parameters of ``fn`` that have no default."""
    args = fn.args
    positional = [*args.posonlyargs, *args.args]
    n_without = len(positional) - len(args.defaults)
    required = [a.arg for a in positional[:n_without]]
    required.extend(
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    )
    return required


class DriverContractRule(Rule):
    id = "driver-contract"
    title = "experiments/e*.py export SPEC + run() with matching parameters"
    rationale = (
        "the campaign registry discovers drivers structurally; a contract "
        "violation only surfaces mid-sweep unless it is caught statically"
    )

    def check_file(self, source: SourceFile, ctx) -> Iterable[Finding]:
        prefix = _is_driver(source)
        if prefix is None or source.tree is None:
            return []
        findings: List[Finding] = []

        def report(line: int, message: str) -> None:
            findings.append(
                Finding(rule=self.id, path=source.rel, line=line, message=message)
            )

        spec_call: Optional[ast.Call] = None
        spec_line = 1
        functions: Dict[str, ast.FunctionDef] = {}
        for node in source.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "SPEC" for t in node.targets
            ):
                spec_line = node.lineno
                if (
                    isinstance(node.value, ast.Call)
                    and getattr(node.value.func, "id", getattr(node.value.func, "attr", None))
                    == "ExperimentSpec"
                ):
                    spec_call = node.value
            elif isinstance(node, ast.FunctionDef):
                functions[node.name] = node

        if spec_call is None:
            report(
                spec_line,
                "driver module must bind SPEC = ExperimentSpec(...) at module level",
            )
        run = functions.get("run")
        if run is None:
            report(1, "driver module must define run(**params) -> ExperimentResult")
        if spec_call is None or run is None:
            return findings

        # -- run() surface ---------------------------------------------
        if run.args.vararg is not None or run.args.kwarg is not None:
            report(
                run.lineno,
                "run() must not take *args/**kwargs -- they defeat the "
                "registry's parameter validation",
            )
        required = _required_params(run)
        if required:
            report(
                run.lineno,
                f"run() parameters {required} have no defaults; every driver "
                "parameter needs one so bare run() works for smoke/golden sweeps",
            )
        run_params = set(_param_names(run))

        # -- SPEC keyword payloads -------------------------------------
        spec_kwargs = {kw.arg: kw.value for kw in spec_call.keywords if kw.arg}
        experiment = spec_kwargs.get("experiment")
        if isinstance(experiment, ast.Constant) and isinstance(experiment.value, str):
            if experiment.value.lower() != prefix:
                report(
                    experiment.lineno,
                    f"SPEC experiment id {experiment.value!r} does not match the "
                    f"module filename prefix {prefix!r}",
                )
        for field_name in ("smoke", "golden"):
            value = spec_kwargs.get(field_name)
            if value is None:
                continue
            try:
                payload = ast.literal_eval(value)
            except ValueError:
                continue  # non-literal configuration: out of static reach
            if not isinstance(payload, dict):
                continue
            unknown = sorted(set(payload) - run_params)
            if unknown:
                report(
                    value.lineno,
                    f"SPEC {field_name}= keys {unknown} are not parameters of "
                    f"run() (accepted: {sorted(run_params)})",
                )

        # -- run_batch surface -----------------------------------------
        run_batch = functions.get("run_batch")
        if run_batch is not None:
            names = _param_names(run_batch)
            if not names or names[0] != "params_list":
                report(
                    run_batch.lineno,
                    "run_batch() must take 'params_list' as its first "
                    "parameter (the runner calls run_batch(params_list))",
                )
            extra_required = [p for p in _required_params(run_batch) if p != "params_list"]
            if extra_required:
                report(
                    run_batch.lineno,
                    f"run_batch() parameters {extra_required} have no defaults; "
                    "the runner only ever passes params_list",
                )
        return findings
