"""The analysis driver: walk files, run rules, apply suppressions.

:func:`run_analysis` is the single entry point both the CLI and the
self-run test use: it collects python files under the requested paths,
runs every registered rule, then filters raw findings through the
in-source ``# repro: allow(...)`` comments and the checked-in
baseline.  The report keeps all three buckets (active / suppressed /
baselined) so the CLI can show what was tolerated, not just what
failed.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.core import Baseline, Finding, Rule, SourceFile

__all__ = ["AnalysisContext", "AnalysisReport", "run_analysis", "find_repo_root"]

# Directories never descended into when collecting python files.
_SKIP_DIRS = {"__pycache__", ".git", "node_modules", ".hypothesis"}

# Markers that identify the repository root when walking upwards from
# the analyzed paths (project rules need it to reach *.md files and
# the experiments package regardless of which subtree was requested).
_ROOT_MARKERS = ("ROADMAP.md", "setup.py", ".git")


def find_repo_root(start: pathlib.Path) -> pathlib.Path:
    """Nearest ancestor of ``start`` carrying a repo-root marker."""
    start = start.resolve()
    candidates = [start] if start.is_dir() else [start.parent]
    for current in candidates:
        for ancestor in (current, *current.parents):
            if any((ancestor / marker).exists() for marker in _ROOT_MARKERS):
                return ancestor
    return candidates[0]


@dataclass
class AnalysisContext:
    """Everything a rule may look at during one pass."""

    root: pathlib.Path
    repo_root: pathlib.Path
    sources: List[SourceFile] = field(default_factory=list)

    def rel(self, path: pathlib.Path) -> str:
        """Repo-root-relative posix path (falls back to absolute)."""
        try:
            return path.resolve().relative_to(self.repo_root).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    def markdown_files(self) -> List[pathlib.Path]:
        """Tracked ``*.md`` files under the repo root (sorted)."""
        found = []
        for path in sorted(self.repo_root.rglob("*.md")):
            if any(
                part.startswith(".") or part in _SKIP_DIRS
                for part in path.relative_to(self.repo_root).parts
            ):
                continue
            found.append(path)
        return found


@dataclass
class AnalysisReport:
    """Outcome of one pass, split by how each finding was handled."""

    findings: List[Finding]
    suppressed: List[Finding]
    baselined: List[Finding]
    files_scanned: int
    rules_run: List[str]
    elapsed: float

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": self.rules_run,
            "elapsed_seconds": round(self.elapsed, 3),
            "counts": {
                "active": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def _collect_python_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    files: List[pathlib.Path] = []
    for path in paths:
        path = pathlib.Path(path)
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for found in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in found.parts):
                continue
            files.append(found)
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def run_analysis(
    paths: Sequence,
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
    repo_root: Optional[pathlib.Path] = None,
) -> AnalysisReport:
    """Run ``rules`` over the python files under ``paths``.

    Findings suppressed by ``# repro: allow(<rule-id>)`` comments and
    findings whose fingerprints appear in ``baseline`` are filtered
    out of :attr:`AnalysisReport.findings` but kept in their own
    buckets for reporting.
    """
    started = time.perf_counter()
    baseline = baseline or Baseline.empty()
    path_objs = [pathlib.Path(p) for p in paths]
    if not path_objs:
        raise ValueError("run_analysis needs at least one path")
    if repo_root is None:
        repo_root = find_repo_root(path_objs[0])
    ctx = AnalysisContext(root=path_objs[0], repo_root=pathlib.Path(repo_root))

    sources_by_rel: Dict[str, SourceFile] = {}
    for path in _collect_python_files(path_objs):
        rel = ctx.rel(path)
        sources_by_rel[rel] = SourceFile(path, rel)
    ctx.sources = list(sources_by_rel.values())

    raw: List[Finding] = []
    for source in ctx.sources:
        if source.parse_error is not None:
            raw.append(
                Finding(
                    rule="parse-error",
                    path=source.rel,
                    line=source.parse_error.lineno or 1,
                    message=f"file does not parse: {source.parse_error.msg}",
                )
            )
            continue
        for rule in rules:
            raw.extend(rule.check_file(source, ctx))
    for rule in rules:
        raw.extend(rule.check_project(ctx))

    active: List[Finding] = []
    suppressed: List[Finding] = []
    baselined: List[Finding] = []
    # Two extraction routes may surface the same token (e.g. a quoted
    # string inside a backtick span); report each location once.
    unique = {(f.rule, f.path, f.line, f.message): f for f in raw}
    for finding in sorted(
        unique.values(), key=lambda f: (f.path, f.line, f.rule, f.message)
    ):
        source = sources_by_rel.get(finding.path)
        if source is not None and source.allows(finding.line, finding.rule):
            suppressed.append(finding)
        elif baseline.contains(finding):
            baselined.append(finding)
        else:
            active.append(finding)

    return AnalysisReport(
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        files_scanned=len(ctx.sources),
        rules_run=[rule.id for rule in rules],
        elapsed=time.perf_counter() - started,
    )
