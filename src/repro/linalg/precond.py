"""Preconditioners (the mechanisms).

The solvers accept any object implementing the :class:`Preconditioner`
protocol (an ``apply`` method mapping a residual to a correction).  The
choices here are the standard light-weight ones used in resilience
studies -- Jacobi, SSOR, a Neumann-series polynomial and block Jacobi
-- all of which are also natural candidates for running in *unreliable*
mode under SRP, since a corrupted preconditioner application changes
only the rate of convergence, never the correctness of a converged
answer (for right preconditioning in flexible methods).

This module is the mechanism layer only.  The declarative surface --
serializable spec strings (``"jacobi"``, ``"ssor:omega=1.2"``,
``"poly:k=4"``, ``"bjacobi:bs=8"``), the named registry, and the
``precond=`` parameter every registered solver accepts -- lives in
:mod:`repro.precond`, which builds these classes and re-raises their
validation errors with the offending spec string attached.  The
unreliable-domain proxy is
:meth:`repro.reliability.ReliabilityDomain.preconditioner`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.linalg.csr import CsrMatrix
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "SsorPreconditioner",
    "NeumannPolynomialPreconditioner",
    "BlockJacobiPreconditioner",
]


class Preconditioner:
    """Protocol: a preconditioner maps a vector to M^{-1} v."""

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Return an approximation to ``M^{-1} vector``."""
        raise NotImplementedError

    def __call__(self, vector: np.ndarray) -> np.ndarray:
        return self.apply(vector)


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (M = I)."""

    def apply(self, vector: np.ndarray) -> np.ndarray:
        return np.array(vector, dtype=np.float64, copy=True)


class JacobiPreconditioner(Preconditioner):
    """Diagonal (Jacobi) preconditioner ``M = diag(A)``."""

    def __init__(self, matrix: CsrMatrix):
        diag = matrix.diagonal_values()
        if np.any(diag == 0.0):
            raise ValueError("Jacobi preconditioner requires a nonzero diagonal")
        self._inv_diag = 1.0 / diag

    def apply(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.size != self._inv_diag.size:
            raise ValueError("vector length does not match the matrix")
        return self._inv_diag * vector


class SsorPreconditioner(Preconditioner):
    """Symmetric successive over-relaxation preconditioner.

    Applies one forward and one backward Gauss-Seidel-like sweep with
    relaxation factor ``omega``.  Implemented with explicit row loops
    over the CSR structure; intended for the moderate problem sizes of
    the experiments.
    """

    def __init__(self, matrix: CsrMatrix, omega: float = 1.0):
        if not matrix.is_square:
            raise ValueError("SSOR requires a square matrix")
        check_positive(omega, "omega")
        if omega >= 2.0:
            raise ValueError("omega must lie in (0, 2) for SSOR")
        self._matrix = matrix
        self._omega = float(omega)
        self._diag = matrix.diagonal_values()
        if np.any(self._diag == 0.0):
            raise ValueError("SSOR requires a nonzero diagonal")

    def apply(self, vector: np.ndarray) -> np.ndarray:
        A = self._matrix
        b = np.asarray(vector, dtype=np.float64)
        if b.size != A.n_rows:
            raise ValueError("vector length does not match the matrix")
        omega = self._omega
        n = A.n_rows
        x = np.zeros(n, dtype=np.float64)
        # Forward sweep: (D/omega + L) x = b
        for i in range(n):
            cols, vals = A.row(i)
            acc = b[i]
            lower = cols < i
            acc -= vals[lower] @ x[cols[lower]]
            x[i] = omega * acc / self._diag[i]
        # Backward sweep: (D/omega + U) y = D x / omega-ish symmetric form
        y = x.copy()
        for i in range(n - 1, -1, -1):
            cols, vals = A.row(i)
            acc = self._diag[i] * x[i] / omega
            upper = cols > i
            acc -= vals[upper] @ y[cols[upper]]
            y[i] = omega * acc / self._diag[i]
        return y


class NeumannPolynomialPreconditioner(Preconditioner):
    """Truncated Neumann-series polynomial preconditioner.

    With the Jacobi splitting ``A = D - N``, the inverse is approximated
    by ``M^{-1} = (I + G + G^2 + ... + G^k) D^{-1}`` where
    ``G = D^{-1} N``.  Matrix-power preconditioners like this need *no
    inner products*, which makes them attractive for latency-tolerant
    (RBSP) solvers.
    """

    def __init__(self, matrix: CsrMatrix, degree: int = 2):
        check_integer(degree, "degree")
        if degree < 0:
            raise ValueError("degree must be non-negative")
        if not matrix.is_square:
            raise ValueError("polynomial preconditioner requires a square matrix")
        diag = matrix.diagonal_values()
        if np.any(diag == 0.0):
            raise ValueError("polynomial preconditioner requires a nonzero diagonal")
        self._matrix = matrix
        self._inv_diag = 1.0 / diag
        self._degree = int(degree)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.size != self._matrix.n_rows:
            raise ValueError("vector length does not match the matrix")
        z = self._inv_diag * vector
        result = z.copy()
        term = z
        for _ in range(self._degree):
            # G term = D^{-1} (D - A) term = term - D^{-1} A term
            term = term - self._inv_diag * self._matrix.matvec(term)
            result += term
        return result


class BlockJacobiPreconditioner(Preconditioner):
    """Block-Jacobi preconditioner with contiguous diagonal blocks.

    The matrix is partitioned into ``n_blocks`` contiguous row blocks;
    each diagonal block is extracted densely and factorized once.  This
    mirrors the per-subdomain (per-rank) preconditioning a distributed
    solver would use, so it is the natural preconditioner for the
    simulated-MPI solvers and the natural unit of loss in LFLR studies.
    """

    def __init__(self, matrix: CsrMatrix, n_blocks: int):
        check_integer(n_blocks, "n_blocks")
        if not matrix.is_square:
            raise ValueError("block Jacobi requires a square matrix")
        n = matrix.n_rows
        if not 1 <= n_blocks <= n:
            raise ValueError("n_blocks must lie in [1, n_rows]")
        self._n = n
        bounds = np.linspace(0, n, n_blocks + 1).astype(int)
        self._ranges: List[tuple] = [
            (int(bounds[i]), int(bounds[i + 1])) for i in range(n_blocks)
        ]
        self._factors = []
        dense = matrix.to_dense() if n <= 2048 else None
        for start, stop in self._ranges:
            if dense is not None:
                block = dense[start:stop, start:stop]
            else:
                block = np.zeros((stop - start, stop - start), dtype=np.float64)
                for i in range(start, stop):
                    cols, vals = matrix.row(i)
                    mask = (cols >= start) & (cols < stop)
                    block[i - start, cols[mask] - start] = vals[mask]
            if block.size == 0:
                self._factors.append(None)
                continue
            self._factors.append(np.linalg.inv(block))

    @property
    def block_ranges(self) -> List[tuple]:
        """The (start, stop) row range of each block."""
        return list(self._ranges)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.size != self._n:
            raise ValueError("vector length does not match the matrix")
        result = np.zeros_like(vector)
        for (start, stop), inv in zip(self._ranges, self._factors):
            if inv is None or stop <= start:
                continue
            result[start:stop] = inv @ vector[start:stop]
        return result
