"""Sparse linear algebra substrate.

Everything the Krylov solvers and PDE discretizations need is built
here from scratch on top of NumPy (SciPy is used only as a test
oracle):

* :mod:`repro.linalg.csr` -- compressed-sparse-row matrices with
  matvec, transpose-matvec, row/diagonal extraction and conversion
  helpers.
* :mod:`repro.linalg.matgen` -- model-problem generators: 1-D/2-D/3-D
  Poisson, convection-diffusion, and random SPD matrices.
* :mod:`repro.linalg.blas` -- the handful of dense kernels the solvers
  need (axpy, Givens rotations, back substitution, classical and
  modified Gram-Schmidt).
* :mod:`repro.linalg.precond` -- Jacobi, SSOR, polynomial (Neumann)
  and block-Jacobi preconditioners.
* :mod:`repro.linalg.checksum` -- Huang & Abraham checksum-encoded
  matrix operations (the classic ABFT scheme the paper cites as the
  root of algorithm-based fault tolerance).
* :mod:`repro.linalg.distributed` -- row-distributed matrices and
  vectors over the simulated MPI runtime.
"""

from repro.linalg.csr import CsrMatrix
from repro.linalg.matgen import (
    poisson_1d,
    poisson_2d,
    poisson_3d,
    convection_diffusion_2d,
    random_spd,
    diagonally_dominant,
    tridiagonal,
)
from repro.linalg.blas import (
    axpy,
    givens_rotation,
    apply_givens,
    back_substitution,
    modified_gram_schmidt_step,
    classical_gram_schmidt_step,
)
from repro.linalg.precond import (
    Preconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    SsorPreconditioner,
    NeumannPolynomialPreconditioner,
    BlockJacobiPreconditioner,
)
from repro.linalg.checksum import (
    ChecksummedMatrix,
    checksum_vector,
    verify_checksum,
    checked_matvec,
    checked_matmul,
    correct_single_error,
)
from repro.linalg.distributed import DistributedVector, DistributedRowMatrix, block_ranges

__all__ = [
    "CsrMatrix",
    "poisson_1d",
    "poisson_2d",
    "poisson_3d",
    "convection_diffusion_2d",
    "random_spd",
    "diagonally_dominant",
    "tridiagonal",
    "axpy",
    "givens_rotation",
    "apply_givens",
    "back_substitution",
    "modified_gram_schmidt_step",
    "classical_gram_schmidt_step",
    "Preconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "SsorPreconditioner",
    "NeumannPolynomialPreconditioner",
    "BlockJacobiPreconditioner",
    "ChecksummedMatrix",
    "checksum_vector",
    "verify_checksum",
    "checked_matvec",
    "checked_matmul",
    "correct_single_error",
    "DistributedVector",
    "DistributedRowMatrix",
    "block_ranges",
]
