"""Compressed-sparse-row matrices.

A small, dependency-free CSR implementation sufficient for the model
problems and solvers of the toolkit.  The data layout is the usual
triplet of arrays (``indptr``, ``indices``, ``data``); matvec is
vectorized with :func:`numpy.add.reduceat` so it stays fast enough for
the benchmark sizes without compiled extensions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

import numpy as np

from repro.utils.validation import check_integer

__all__ = ["CsrMatrix"]

#: Compute dtypes a CsrMatrix may carry.  Accumulation narrower than
#: float32 is numerically useless for Krylov work, so float16 is only
#: allowed as a *storage* dtype (entries are widened on multiply).
_COMPUTE_DTYPES = (np.float32, np.float64)
_STORAGE_DTYPES = (np.float16, np.float32, np.float64)


def _check_compute_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in [np.dtype(d) for d in _COMPUTE_DTYPES]:
        raise ValueError(
            f"compute dtype must be float32 or float64, got {resolved}"
        )
    return resolved


def _check_storage_dtype(dtype) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in [np.dtype(d) for d in _STORAGE_DTYPES]:
        raise ValueError(
            f"storage dtype must be float16, float32 or float64, "
            f"got {resolved}"
        )
    return resolved


class CsrMatrix:
    """A real matrix in compressed-sparse-row format.

    Parameters
    ----------
    indptr:
        Row-pointer array of length ``n_rows + 1``.
    indices:
        Column indices of stored entries (length ``nnz``).
    data:
        Stored values (length ``nnz``), coerced to the storage dtype
        (float64 unless ``dtype``/``storage`` say otherwise).
    shape:
        ``(n_rows, n_cols)``.
    dtype:
        Compute dtype -- the dtype matvec coerces input vectors to and
        (together with the storage dtype) the dtype of its results.
        float64 (the default) or float32.
    storage:
        Dtype the ``data`` array is stored in; defaults to ``dtype``.
        May be float16 to halve matrix memory traffic again -- entries
        are widened by NumPy promotion during the multiply, so the
        accumulation still runs at the compute dtype.

    Notes
    -----
    The constructor validates structural invariants (monotone
    ``indptr``, in-range column indices).  Duplicate column indices in
    a row are allowed and are summed implicitly by matvec, matching
    conventional CSR semantics.
    """

    def __init__(
        self,
        indptr: Iterable[int],
        indices: Iterable[int],
        data: Iterable[float],
        shape: Tuple[int, int],
        *,
        dtype=np.float64,
        storage=None,
    ):
        self.dtype = _check_compute_dtype(dtype)
        storage_dtype = (
            self.dtype if storage is None else _check_storage_dtype(storage)
        )
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=storage_dtype)
        # Dtype of matvec products: NumPy promotion of storage x compute
        # (float16 storage widens to the compute dtype, never narrows it).
        self._result_dtype = np.result_type(self.data.dtype, self.dtype)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ValueError("shape entries must be non-negative")
        self.shape = (n_rows, n_cols)
        self._validate()
        # Cached matvec reduce plan (structure is immutable): the rows
        # with at least one stored entry and their segment starts.
        # reduceat must only see strictly increasing indices -- repeated
        # indptr entries (empty rows) would make it return a neighbouring
        # segment's value instead of 0, so empty rows are masked out and
        # left at zero in the output.
        self._nonempty_rows = np.flatnonzero(np.diff(self.indptr) > 0)
        self._reduce_starts = self.indptr[self._nonempty_rows]
        self._has_empty_rows = self._nonempty_rows.size != n_rows

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.ndim != 1 or self.indptr.size != n_rows + 1:
            raise ValueError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.size != nnz or self.data.size != nnz:
            raise ValueError(
                f"indices/data must have length indptr[-1]={nnz}, "
                f"got {self.indices.size}/{self.data.size}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n_cols):
            raise ValueError("column indices out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        *,
        tol: float = 0.0,
        dtype=np.float64,
        storage=None,
    ) -> "CsrMatrix":
        """Build from a dense array, dropping entries with ``|a_ij| <= tol``."""
        arr = np.asarray(dense, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        mask = np.abs(arr) > tol
        indptr = np.zeros(arr.shape[0] + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(mask.sum(axis=1))
        indices = np.nonzero(mask)[1]
        data = arr[mask]
        return cls(indptr, indices, data, arr.shape, dtype=dtype, storage=storage)

    @classmethod
    def from_coo(
        cls,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable[float],
        shape: Tuple[int, int],
        *,
        dtype=np.float64,
        storage=None,
    ) -> "CsrMatrix":
        """Build from coordinate (triplet) format; duplicates are summed."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (rows.shape == cols.shape == values.shape):
            raise ValueError("rows, cols and values must have the same length")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("row indices out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError("column indices out of range")
        # Sum duplicates by sorting on (row, col).
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if rows.size:
            keys = rows * n_cols + cols
            unique_mask = np.empty(rows.size, dtype=bool)
            unique_mask[0] = True
            unique_mask[1:] = keys[1:] != keys[:-1]
            group_ids = np.cumsum(unique_mask) - 1
            summed = np.zeros(int(group_ids[-1]) + 1, dtype=np.float64)
            np.add.at(summed, group_ids, values)
            rows = rows[unique_mask]
            cols = cols[unique_mask]
            values = summed
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        indptr = np.cumsum(indptr)
        return cls(
            indptr, cols, values, (n_rows, n_cols), dtype=dtype, storage=storage
        )

    @classmethod
    def identity(cls, n: int, *, dtype=np.float64, storage=None) -> "CsrMatrix":
        """The n-by-n identity matrix."""
        check_integer(n, "n")
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        data = np.ones(n, dtype=np.float64)
        return cls(indptr, indices, data, (n, n), dtype=dtype, storage=storage)

    @classmethod
    def diagonal(
        cls, values: Iterable[float], *, dtype=np.float64, storage=None
    ) -> "CsrMatrix":
        """A diagonal matrix with the given diagonal values."""
        vals = np.asarray(values, dtype=np.float64)
        n = vals.size
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        return cls(indptr, indices, vals.copy(), (n, n), dtype=dtype, storage=storage)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def is_square(self) -> bool:
        """Whether the matrix is square."""
        return self.shape[0] == self.shape[1]

    @property
    def storage_dtype(self) -> np.dtype:
        """Dtype the stored entries are held in (may be narrower than
        the compute dtype, e.g. float16 storage under float32 compute)."""
        return self.data.dtype

    def astype(self, dtype, *, storage=None) -> "CsrMatrix":
        """Return a copy with the given compute (and optional storage) dtype.

        The structure arrays are shared (they are immutable by
        convention); only ``data`` is converted.  ``astype(np.float64)``
        on a float64 matrix is still a new object, matching
        :meth:`copy` semantics for the data array.
        """
        resolved = _check_compute_dtype(dtype)
        storage_dtype = (
            resolved if storage is None else _check_storage_dtype(storage)
        )
        return CsrMatrix(
            self.indptr,
            self.indices,
            self.data.astype(storage_dtype),
            self.shape,
            dtype=resolved,
            storage=storage_dtype,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x`` for a 1-D vector ``x``."""
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 1 or x.size != self.n_cols:
            raise ValueError(
                f"x must be a vector of length {self.n_cols}, got shape {x.shape}"
            )
        products = self.data * x[self.indices]
        if not self._has_empty_rows:
            if self.n_rows == 0:
                return np.zeros(0, dtype=self._result_dtype)
            return np.add.reduceat(products, self._reduce_starts)
        result = np.zeros(self.n_rows, dtype=self._result_dtype)
        if products.size:
            result[self._nonempty_rows] = np.add.reduceat(
                products, self._reduce_starts
            )
        return result

    def matvec_block(self, X: np.ndarray) -> np.ndarray:
        """Return ``(A @ X.T).T`` for a stack of vectors ``X`` of shape ``(S, n)``.

        One gather and one ``reduceat`` over the whole stack: each row of
        the result is bit-identical to ``matvec(X[s])`` because
        ``np.add.reduceat`` reduces every row of the 2-D product array
        with the same segment sums the 1-D call uses.
        """
        X = np.asarray(X, dtype=self.dtype)
        if X.ndim != 2 or X.shape[1] != self.n_cols:
            raise ValueError(
                f"X must have shape (S, {self.n_cols}), got {X.shape}"
            )
        products = self.data * X[:, self.indices]
        if not self._has_empty_rows:
            if self.n_rows == 0:
                return np.zeros((X.shape[0], 0), dtype=self._result_dtype)
            return np.add.reduceat(products, self._reduce_starts, axis=1)
        result = np.zeros((X.shape[0], self.n_rows), dtype=self._result_dtype)
        if products.size:
            result[:, self._nonempty_rows] = np.add.reduceat(
                products, self._reduce_starts, axis=1
            )
        return result

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Return ``A.T @ y``."""
        y = np.asarray(y, dtype=self.dtype)
        if y.ndim != 1 or y.size != self.n_rows:
            raise ValueError(
                f"y must be a vector of length {self.n_rows}, got shape {y.shape}"
            )
        result = np.zeros(self.n_cols, dtype=self._result_dtype)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        np.add.at(result, self.indices, self.data * y[row_ids])
        return result

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def diagonal_values(self) -> np.ndarray:
        """Extract the main diagonal (zeros where no entry is stored)."""
        diag = np.zeros(min(self.shape), dtype=self.dtype)
        for i in range(min(self.shape)):
            start, end = self.indptr[i], self.indptr[i + 1]
            row_cols = self.indices[start:end]
            hits = np.nonzero(row_cols == i)[0]
            if hits.size:
                diag[i] = self.data[start:end][hits].sum()
        return diag

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(columns, values)`` of row ``i``."""
        check_integer(i, "i")
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range")
        start, end = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:end].copy(), self.data[start:end].copy()

    def row_slice(self, start: int, stop: int) -> "CsrMatrix":
        """Return rows ``start:stop`` as a new CSR matrix (same column space)."""
        check_integer(start, "start")
        check_integer(stop, "stop")
        if not 0 <= start <= stop <= self.n_rows:
            raise ValueError(f"invalid row slice [{start}, {stop})")
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        indptr = self.indptr[start : stop + 1] - self.indptr[start]
        return CsrMatrix(
            indptr, self.indices[lo:hi].copy(), self.data[lo:hi].copy(),
            (stop - start, self.n_cols),
            dtype=self.dtype, storage=self.data.dtype,
        )

    def to_dense(self) -> np.ndarray:
        """Return the dense equivalent (use only for small matrices/tests)."""
        dense = np.zeros(self.shape, dtype=self.dtype)
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        np.add.at(dense, (row_ids, self.indices), self.data)
        return dense

    def transpose(self) -> "CsrMatrix":
        """Return the transpose as a new CSR matrix."""
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        return CsrMatrix.from_coo(
            self.indices, row_ids, self.data, (self.n_cols, self.n_rows),
            dtype=self.dtype, storage=self.data.dtype,
        )

    def scale_rows(self, factors: np.ndarray) -> "CsrMatrix":
        """Return ``diag(factors) @ A`` as a new matrix."""
        factors = np.asarray(factors, dtype=self.dtype)
        if factors.shape != (self.n_rows,):
            raise ValueError("factors must have one entry per row")
        row_ids = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * factors[row_ids],
            self.shape,
            dtype=self.dtype, storage=self.data.dtype,
        )

    def copy(self) -> "CsrMatrix":
        """Deep copy."""
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape,
            dtype=self.dtype, storage=self.data.dtype,
        )

    def __add__(self, other: "CsrMatrix") -> "CsrMatrix":
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        if self.shape != other.shape:
            raise ValueError("matrix shapes must match for addition")
        self_rows = np.repeat(np.arange(self.n_rows), np.diff(self.indptr))
        other_rows = np.repeat(np.arange(other.n_rows), np.diff(other.indptr))
        return CsrMatrix.from_coo(
            np.concatenate([self_rows, other_rows]),
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.data, other.data]),
            self.shape,
            dtype=np.result_type(self.dtype, other.dtype),
        )

    def __mul__(self, scalar: Union[int, float]) -> "CsrMatrix":
        if not isinstance(scalar, (int, float, np.floating, np.integer)):
            return NotImplemented
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data * float(scalar),
            self.shape,
            dtype=self.dtype, storage=self.data.dtype,
        )

    __rmul__ = __mul__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"
