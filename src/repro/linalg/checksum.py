"""Checksum-encoded (ABFT) matrix operations.

Huang & Abraham's algorithm-based fault tolerance (the 1984 paper cited
by Heroux as the root of the field) encodes redundancy directly into
the operands of a matrix computation:

* a **column-checksum matrix** appends a row equal to the column sums;
* a **row-checksum vector/matrix** appends an element/column equal to
  the row sums;
* after the operation, the checksum relations must still hold; a
  violation localizes an error, and for a single corrupted element the
  error can be *corrected* from the checksum difference.

This module implements checksum encoding for matrix-vector and
matrix-matrix products, verification, and single-error correction for
the matmul case -- these are the "meta data used to recover state can
also be used to detect anomalous behavior" of paper §III-A, and the
substance of experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.linalg.csr import CsrMatrix
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "checksum_vector",
    "verify_checksum",
    "ChecksummedMatrix",
    "checked_matvec",
    "checked_matmul",
    "correct_single_error",
    "MatmulCheckReport",
]


def checksum_vector(vector: np.ndarray) -> float:
    """Return the checksum (sum of entries) of a vector."""
    vector = np.asarray(vector, dtype=np.float64)
    return float(vector.sum())


def verify_checksum(
    vector: np.ndarray, expected: float, *, rtol: float = 1e-8, atol: float = 1e-12
) -> bool:
    """Check a vector against its expected checksum with a mixed tolerance.

    The tolerance is relative to the 1-norm of the vector, which is the
    natural scale of rounding error accumulated by the sum.
    """
    vector = np.asarray(vector, dtype=np.float64)
    check_non_negative(rtol, "rtol")
    check_non_negative(atol, "atol")
    actual = vector.sum()
    if not np.isfinite(actual) or not np.isfinite(expected):
        return bool(np.isfinite(actual) == np.isfinite(expected) and actual == expected)
    scale = np.abs(vector).sum()
    return bool(abs(actual - expected) <= atol + rtol * max(scale, 1.0))


class ChecksummedMatrix:
    """A matrix carrying its column-checksum row.

    The checksum row is computed once at construction; matvec results
    can then be verified in O(n) instead of recomputing the product.
    """

    def __init__(self, matrix: Union[CsrMatrix, np.ndarray]):
        if isinstance(matrix, CsrMatrix):
            self._matrix = matrix
            self._column_checksums = matrix.rmatvec(
                np.ones(matrix.n_rows, dtype=np.float64)
            )
        else:
            dense = np.asarray(matrix, dtype=np.float64)
            if dense.ndim != 2:
                raise ValueError("matrix must be two-dimensional")
            self._matrix = dense
            self._column_checksums = dense.sum(axis=0)

    @property
    def matrix(self):
        """The wrapped matrix (CSR or dense ndarray)."""
        return self._matrix

    @property
    def column_checksums(self) -> np.ndarray:
        """The column-sum vector e^T A."""
        return self._column_checksums.copy()

    @property
    def shape(self) -> Tuple[int, int]:
        """Shape of the wrapped matrix."""
        return self._matrix.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Plain (unchecked) matvec."""
        if isinstance(self._matrix, CsrMatrix):
            return self._matrix.matvec(x)
        return self._matrix @ np.asarray(x, dtype=np.float64)

    def expected_result_checksum(self, x: np.ndarray) -> float:
        """The checksum the result of ``A @ x`` must have: ``(e^T A) x``."""
        x = np.asarray(x, dtype=np.float64)
        return float(self._column_checksums @ x)


def checked_matvec(
    matrix: Union[ChecksummedMatrix, CsrMatrix, np.ndarray],
    x: np.ndarray,
    *,
    rtol: float = 1e-8,
    atol: float = 1e-12,
    corrupt=None,
) -> Tuple[np.ndarray, bool]:
    """Matrix-vector product with checksum verification.

    Parameters
    ----------
    matrix:
        The operand; a plain matrix is wrapped on the fly.
    x:
        Input vector.
    corrupt:
        Optional callable applied to the raw result *before*
        verification; the fault injectors pass themselves here so the
        check sees exactly what a corrupted execution would produce.

    Returns
    -------
    (result, ok):
        The (possibly corrupted) result and whether the checksum test
        passed.
    """
    wrapped = matrix if isinstance(matrix, ChecksummedMatrix) else ChecksummedMatrix(matrix)
    expected = wrapped.expected_result_checksum(x)
    result = wrapped.matvec(x)
    if corrupt is not None:
        result = corrupt(result)
    ok = verify_checksum(result, expected, rtol=rtol, atol=atol)
    return result, ok


@dataclass
class MatmulCheckReport:
    """Outcome of a checked matrix-matrix multiplication."""

    ok: bool
    row_violations: np.ndarray
    col_violations: np.ndarray
    corrected: bool = False
    corrected_index: Optional[Tuple[int, int]] = None


def checked_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    corrupt=None,
    correct: bool = False,
) -> Tuple[np.ndarray, MatmulCheckReport]:
    """Full-checksum matrix product C = A @ B with detection/correction.

    Following Huang & Abraham, A is extended with a column-checksum row
    and B with a row-checksum column; the product of the extended
    matrices then contains both the row and column checksums of C, and
    a single corrupted element of C is located by the intersection of
    the violated row and column and repaired from either checksum.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("incompatible shapes for matmul")
    check_non_negative(rtol, "rtol")
    c = a @ b
    if corrupt is not None:
        c = corrupt(c)
    # Checksums computed from the *inputs* (trusted metadata).
    expected_col = (a.sum(axis=0)) @ b  # column sums of C
    expected_row = a @ (b.sum(axis=1))  # row sums of C
    actual_col = c.sum(axis=0)
    actual_row = c.sum(axis=1)
    col_scale = np.abs(c).sum(axis=0) + 1.0
    row_scale = np.abs(c).sum(axis=1) + 1.0
    with np.errstate(invalid="ignore"):
        col_diff = actual_col - expected_col
        row_diff = actual_row - expected_row
    col_bad = ~np.isfinite(actual_col) | (np.abs(col_diff) > atol + rtol * col_scale)
    row_bad = ~np.isfinite(actual_row) | (np.abs(row_diff) > atol + rtol * row_scale)
    ok = not (col_bad.any() or row_bad.any())
    report = MatmulCheckReport(ok=ok, row_violations=np.nonzero(row_bad)[0],
                               col_violations=np.nonzero(col_bad)[0])
    if not ok and correct:
        corrected = correct_single_error(
            c, expected_row, expected_col, row_bad, col_bad
        )
        if corrected is not None:
            c, index = corrected
            report.corrected = True
            report.corrected_index = index
            report.ok = True
    return c, report


def correct_single_error(
    c: np.ndarray,
    expected_row: np.ndarray,
    expected_col: np.ndarray,
    row_bad: np.ndarray,
    col_bad: np.ndarray,
) -> Optional[Tuple[np.ndarray, Tuple[int, int]]]:
    """Attempt single-element correction of a checksum-violating product.

    Correction is possible exactly when one row and one column checksum
    are violated; the corrupted element sits at their intersection and
    its correct value is recovered from the row-checksum difference.
    Returns ``None`` when the violation pattern is not a single element
    (multiple errors, or checksum elements themselves corrupted).
    """
    rows = np.nonzero(row_bad)[0]
    cols = np.nonzero(col_bad)[0]
    if rows.size != 1 or cols.size != 1:
        return None
    i, j = int(rows[0]), int(cols[0])
    corrected = c.copy()
    # Rebuild the corrupted entry from the expected row sum and the other
    # (uncorrupted) entries of its row.  This stays accurate even when the
    # corrupted value is enormous or non-finite, where the alternative
    # "subtract the checksum difference" formulation loses all precision.
    others = np.delete(c[i, :], j).sum()
    corrected[i, j] = expected_row[i] - others
    return corrected, (i, j)
