"""Model-problem matrix generators.

These are the standard discretizations used throughout the resilience
and Krylov literature, and hence in our experiments:

* :func:`poisson_1d`, :func:`poisson_2d`, :func:`poisson_3d` --
  finite-difference Laplacians with Dirichlet boundaries (SPD).
* :func:`convection_diffusion_2d` -- upwind-discretized
  convection-diffusion operator (nonsymmetric; the classic GMRES test
  problem).
* :func:`tridiagonal`, :func:`diagonally_dominant`, :func:`random_spd`
  -- synthetic matrices for unit tests and property-based tests.

All generators return :class:`~repro.linalg.csr.CsrMatrix`.

The deterministic generators (Poisson, convection-diffusion,
tridiagonal) are memoized: multi-trial experiments rebuild the same
operator dozens of times per campaign, and assembly is a pure function
of the parameters.  Cached matrices are returned as deep copies so
callers can mutate their copy (fault injection!) without poisoning the
cache; use :func:`clear_matrix_cache` to drop the memo.
"""

from __future__ import annotations

import functools
from typing import Optional, Tuple, Union

import numpy as np

from repro.linalg.csr import CsrMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "poisson_1d",
    "poisson_2d",
    "poisson_3d",
    "convection_diffusion_2d",
    "tridiagonal",
    "diagonally_dominant",
    "random_spd",
    "clear_matrix_cache",
    "matrix_cache_info",
]

_CACHE_MAXSIZE = 32
_cached_builders = []


def _memoize_matrix(builder):
    """LRU-cache a deterministic CsrMatrix generator.

    The wrapped function returns a defensive :meth:`CsrMatrix.copy` of
    the cached instance, so in-place corruption of a returned matrix
    (the fault-injection experiments do exactly that) never leaks into
    later trials.
    """
    cached = functools.lru_cache(maxsize=_CACHE_MAXSIZE)(builder)
    _cached_builders.append(cached)

    @functools.wraps(builder)
    def wrapper(*args, **kwargs):
        return cached(*args, **kwargs).copy()

    wrapper.cache_info = cached.cache_info
    return wrapper


def clear_matrix_cache() -> None:
    """Drop all memoized model-problem matrices."""
    for cached in _cached_builders:
        cached.cache_clear()


def matrix_cache_info() -> dict:
    """Per-generator ``lru_cache`` statistics (hits/misses/currsize)."""
    return {cached.__name__: cached.cache_info() for cached in _cached_builders}


@_memoize_matrix
def tridiagonal(n: int, lower: float, diag: float, upper: float) -> CsrMatrix:
    """General tridiagonal Toeplitz matrix of order ``n``."""
    check_integer(n, "n")
    if n <= 0:
        raise ValueError("n must be positive")
    rows, cols, vals = [], [], []
    for i in range(n):
        if i > 0:
            rows.append(i)
            cols.append(i - 1)
            vals.append(lower)
        rows.append(i)
        cols.append(i)
        vals.append(diag)
        if i < n - 1:
            rows.append(i)
            cols.append(i + 1)
            vals.append(upper)
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


@_memoize_matrix
def poisson_1d(n: int, *, scale: Optional[float] = None) -> CsrMatrix:
    """1-D Laplacian ``[-1, 2, -1]`` with Dirichlet boundaries.

    Parameters
    ----------
    n:
        Number of interior grid points.
    scale:
        Optional scalar multiplying the stencil; defaults to 1 (i.e.
        the matrix is not divided by h^2).
    """
    factor = 1.0 if scale is None else float(scale)
    return tridiagonal(n, -factor, 2.0 * factor, -factor)


def _grid_index_2d(i: int, j: int, ny: int) -> int:
    return i * ny + j


@_memoize_matrix
def poisson_2d(nx: int, ny: Optional[int] = None, *, scale: Optional[float] = None) -> CsrMatrix:
    """5-point 2-D Laplacian on an ``nx`` x ``ny`` interior grid (SPD)."""
    check_integer(nx, "nx")
    if ny is None:
        ny = nx
    check_integer(ny, "ny")
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    factor = 1.0 if scale is None else float(scale)
    rows, cols, vals = [], [], []
    for i in range(nx):
        for j in range(ny):
            idx = _grid_index_2d(i, j, ny)
            rows.append(idx)
            cols.append(idx)
            vals.append(4.0 * factor)
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < nx and 0 <= nj < ny:
                    rows.append(idx)
                    cols.append(_grid_index_2d(ni, nj, ny))
                    vals.append(-1.0 * factor)
    n = nx * ny
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


@_memoize_matrix
def poisson_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None) -> CsrMatrix:
    """7-point 3-D Laplacian on an ``nx`` x ``ny`` x ``nz`` interior grid."""
    check_integer(nx, "nx")
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    check_integer(ny, "ny")
    check_integer(nz, "nz")
    if nx <= 0 or ny <= 0 or nz <= 0:
        raise ValueError("grid dimensions must be positive")
    rows, cols, vals = [], [], []

    def index(i: int, j: int, k: int) -> int:
        return (i * ny + j) * nz + k

    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                idx = index(i, j, k)
                rows.append(idx)
                cols.append(idx)
                vals.append(6.0)
                for di, dj, dk in (
                    (-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)
                ):
                    ni, nj, nk = i + di, j + dj, k + dk
                    if 0 <= ni < nx and 0 <= nj < ny and 0 <= nk < nz:
                        rows.append(idx)
                        cols.append(index(ni, nj, nk))
                        vals.append(-1.0)
    n = nx * ny * nz
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


@_memoize_matrix
def convection_diffusion_2d(
    nx: int,
    ny: Optional[int] = None,
    *,
    peclet: float = 10.0,
    wind: Tuple[float, float] = (1.0, 1.0),
) -> CsrMatrix:
    """Upwind convection-diffusion operator on a 2-D grid (nonsymmetric).

    Discretizes ``-Δu + Pe * (w · ∇u)`` on the unit square with
    Dirichlet boundaries, central differences for diffusion and
    first-order upwind differences for convection.  Larger ``peclet``
    makes the matrix more nonsymmetric and GMRES convergence harder --
    the regime where restarted GMRES stagnation (and hence the value of
    reliable outer iterations) shows.
    """
    check_integer(nx, "nx")
    ny = nx if ny is None else ny
    check_integer(ny, "ny")
    check_positive(peclet, "peclet")
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    hx = 1.0 / (nx + 1)
    hy = 1.0 / (ny + 1)
    wx, wy = float(wind[0]), float(wind[1])
    rows, cols, vals = [], [], []
    for i in range(nx):
        for j in range(ny):
            idx = _grid_index_2d(i, j, ny)
            diag = 2.0 / hx**2 + 2.0 / hy**2
            # Upwinding: the convection term uses the upstream neighbour.
            cx = peclet * wx / hx
            cy = peclet * wy / hy
            diag += abs(cx) + abs(cy)
            rows.append(idx)
            cols.append(idx)
            vals.append(diag)
            neighbors = [
                (-1, 0, -1.0 / hx**2 - (cx if cx > 0 else 0.0)),
                (1, 0, -1.0 / hx**2 + (cx if cx < 0 else 0.0)),
                (0, -1, -1.0 / hy**2 - (cy if cy > 0 else 0.0)),
                (0, 1, -1.0 / hy**2 + (cy if cy < 0 else 0.0)),
            ]
            for di, dj, value in neighbors:
                ni, nj = i + di, j + dj
                if 0 <= ni < nx and 0 <= nj < ny:
                    rows.append(idx)
                    cols.append(_grid_index_2d(ni, nj, ny))
                    vals.append(value)
    n = nx * ny
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


def diagonally_dominant(
    n: int,
    density: float = 0.05,
    rng: Union[None, int, np.random.Generator] = None,
    *,
    dominance: float = 1.5,
) -> CsrMatrix:
    """Random strictly diagonally dominant matrix (guaranteed nonsingular)."""
    check_integer(n, "n")
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must lie in (0, 1]")
    check_positive(dominance, "dominance")
    gen = as_generator(rng)
    n_offdiag = max(int(density * n * n) - n, 0)
    rows = gen.integers(0, n, size=n_offdiag)
    cols = gen.integers(0, n, size=n_offdiag)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    vals = gen.standard_normal(rows.size)
    dense_rowsums = np.zeros(n, dtype=np.float64)
    np.add.at(dense_rowsums, rows, np.abs(vals))
    diag_rows = np.arange(n)
    diag_vals = dominance * (dense_rowsums + 1.0)
    all_rows = np.concatenate([rows, diag_rows])
    all_cols = np.concatenate([cols, diag_rows])
    all_vals = np.concatenate([vals, diag_vals])
    return CsrMatrix.from_coo(all_rows, all_cols, all_vals, (n, n))


def random_spd(
    n: int,
    rng: Union[None, int, np.random.Generator] = None,
    *,
    condition: float = 100.0,
) -> CsrMatrix:
    """Dense-random SPD matrix with prescribed condition number.

    Built as ``Q diag(lambda) Q^T`` with a random orthogonal ``Q`` and
    logarithmically spaced eigenvalues in ``[1/condition, 1]``.
    Returned in CSR form for interface uniformity (it is actually
    dense); intended for small-n tests only.
    """
    check_integer(n, "n")
    if n <= 0:
        raise ValueError("n must be positive")
    check_positive(condition, "condition")
    gen = as_generator(rng)
    q, _ = np.linalg.qr(gen.standard_normal((n, n)))
    eigenvalues = np.logspace(-np.log10(condition), 0.0, n)
    dense = (q * eigenvalues) @ q.T
    dense = 0.5 * (dense + dense.T)
    return CsrMatrix.from_dense(dense)
