"""Row-distributed vectors and matrices over any communicator backend.

The distributed objects follow the simplest row-block decomposition:
rank ``r`` owns a contiguous block of rows/entries.  Reductions (dot
products, norms) use the communicator's ``allreduce`` -- these are the
global synchronization points whose latency the RBSP/pipelined
algorithms hide.  The matrix-vector product gathers the needed remote
entries with an ``allgather``; for the banded model problems used in
the experiments this is wasteful in bandwidth but exactly right in
*synchronization structure*, which is what the performance model cares
about, while keeping the numerics bit-identical to the sequential
solvers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.linalg.csr import CsrMatrix
from repro.simmpi.ops import SUM, MAX

if TYPE_CHECKING:  # annotation-only: keeps repro.comm free to import linalg
    from repro.comm.base import BaseCommunicator
from repro.utils.validation import check_integer

__all__ = ["block_ranges", "DistributedVector", "DistributedRowMatrix"]


def block_ranges(n: int, n_blocks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into ``n_blocks`` contiguous, balanced ranges.

    The first ``n % n_blocks`` blocks get one extra element, matching
    the usual MPI block distribution.
    """
    check_integer(n, "n")
    check_integer(n_blocks, "n_blocks")
    if n < 0 or n_blocks <= 0:
        raise ValueError("n must be >= 0 and n_blocks > 0")
    base = n // n_blocks
    extra = n % n_blocks
    ranges: List[Tuple[int, int]] = []
    start = 0
    for b in range(n_blocks):
        size = base + (1 if b < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class DistributedVector:
    """A vector distributed in contiguous blocks over the ranks of a comm.

    Parameters
    ----------
    comm:
        The communicator; rank ``r`` owns block ``r``.
    local:
        This rank's block of entries.
    global_size:
        Total length across all ranks.
    offset:
        Global index of this rank's first entry.
    """

    def __init__(self, comm: BaseCommunicator, local: np.ndarray, global_size: int, offset: int):
        self.comm = comm
        self.local = np.array(local, dtype=np.float64, copy=True)
        self.global_size = int(global_size)
        self.offset = int(offset)

    # ------------------------------------------------------------------
    @classmethod
    def from_global(cls, comm: BaseCommunicator, global_vector: np.ndarray) -> "DistributedVector":
        """Create by slicing a replicated global vector (test helper)."""
        global_vector = np.asarray(global_vector, dtype=np.float64)
        ranges = block_ranges(global_vector.size, comm.size)
        start, stop = ranges[comm.rank]
        return cls(comm, global_vector[start:stop], global_vector.size, start)

    @classmethod
    def zeros_like(cls, other: "DistributedVector") -> "DistributedVector":
        """A zero vector with the same distribution as ``other``."""
        return cls(other.comm, np.zeros_like(other.local), other.global_size, other.offset)

    @classmethod
    def from_local_view(
        cls, comm: BaseCommunicator, local: np.ndarray, global_size: int, offset: int
    ) -> "DistributedVector":
        """Wrap existing local storage WITHOUT copying.

        The returned vector aliases ``local``: mutations through either
        side are visible to the other.  This is how
        :class:`~repro.krylov.ops.KrylovBasis` hands out basis columns
        that remain live solver state (the fault-injection surface);
        regular constructors keep their defensive copy.
        """
        vector = cls.__new__(cls)
        vector.comm = comm
        vector.local = np.asarray(local, dtype=np.float64)
        vector.global_size = int(global_size)
        vector.offset = int(offset)
        return vector

    def copy(self) -> "DistributedVector":
        """Deep copy (same distribution)."""
        return DistributedVector(self.comm, self.local, self.global_size, self.offset)

    # ------------------------------------------------------------------
    @property
    def local_size(self) -> int:
        """Number of locally owned entries."""
        return self.local.size

    def dot(self, other: "DistributedVector") -> float:
        """Global inner product (one allreduce)."""
        self._check_compatible(other)
        local_dot = float(self.local @ other.local)
        self.comm.compute(2.0 * self.local_size)
        return float(self.comm.allreduce(local_dot, op=SUM))

    def idot(self, other: "DistributedVector"):
        """Non-blocking global inner product; returns a Request."""
        self._check_compatible(other)
        local_dot = float(self.local @ other.local)
        self.comm.compute(2.0 * self.local_size)
        return self.comm.iallreduce(local_dot, op=SUM)

    def norm(self) -> float:
        """Global 2-norm (one allreduce)."""
        local_sq = float(self.local @ self.local)
        self.comm.compute(2.0 * self.local_size)
        return float(np.sqrt(self.comm.allreduce(local_sq, op=SUM)))

    def norm_inf(self) -> float:
        """Global infinity norm (one allreduce with MAX)."""
        local_max = float(np.max(np.abs(self.local))) if self.local.size else 0.0
        return float(self.comm.allreduce(local_max, op=MAX))

    def axpy(self, alpha: float, other: "DistributedVector") -> "DistributedVector":
        """In-place ``self += alpha * other``; returns self."""
        self._check_compatible(other)
        self.local += alpha * other.local
        self.comm.compute(2.0 * self.local_size)
        return self

    def scale(self, alpha: float) -> "DistributedVector":
        """In-place scaling; returns self."""
        self.local *= alpha
        self.comm.compute(self.local_size)
        return self

    def gather_global(self) -> np.ndarray:
        """Return the full global vector on every rank (one allgather)."""
        pieces = self.comm.allgather(self.local)
        return np.concatenate(pieces)

    def _check_compatible(self, other: "DistributedVector") -> None:
        if not isinstance(other, DistributedVector):
            raise TypeError("expected a DistributedVector")
        if other.global_size != self.global_size or other.local.size != self.local.size:
            raise ValueError("distributed vectors have mismatched distributions")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedVector(rank={self.comm.rank}, local={self.local_size}, "
            f"global={self.global_size})"
        )


class DistributedRowMatrix:
    """A sparse matrix distributed by contiguous row blocks.

    Each rank stores the CSR block of its rows with *global* column
    indices.  ``matvec`` gathers the full input vector (allgather) and
    multiplies locally; the synchronization structure (one collective
    per matvec) matches a general distributed sparse matvec even though
    the data volume is pessimistic.
    """

    def __init__(self, comm: BaseCommunicator, local_block: CsrMatrix, global_shape: Tuple[int, int],
                 row_offset: int):
        self.comm = comm
        self.local_block = local_block
        self.global_shape = (int(global_shape[0]), int(global_shape[1]))
        self.row_offset = int(row_offset)
        if local_block.n_cols != self.global_shape[1]:
            raise ValueError("local block must use global column indices")

    @classmethod
    def from_global(cls, comm: BaseCommunicator, matrix: CsrMatrix) -> "DistributedRowMatrix":
        """Distribute a replicated global matrix by row blocks."""
        ranges = block_ranges(matrix.n_rows, comm.size)
        start, stop = ranges[comm.rank]
        return cls(comm, matrix.row_slice(start, stop), matrix.shape, start)

    @property
    def local_rows(self) -> int:
        """Number of locally owned rows."""
        return self.local_block.n_rows

    def matvec(self, x: DistributedVector) -> DistributedVector:
        """Distributed matrix-vector product; returns a new vector."""
        if not isinstance(x, DistributedVector):
            raise TypeError("matvec expects a DistributedVector")
        if x.global_size != self.global_shape[1]:
            raise ValueError("vector length does not match the matrix")
        global_x = x.gather_global()
        local_result = self.local_block.matvec(global_x)
        self.comm.compute(2.0 * self.local_block.nnz)
        return DistributedVector(
            self.comm, local_result, self.global_shape[0], self.row_offset
        )

    def diagonal(self) -> DistributedVector:
        """The locally owned part of the global diagonal."""
        diag_local = np.zeros(self.local_rows, dtype=np.float64)
        for i in range(self.local_rows):
            cols, vals = self.local_block.row(i)
            hits = np.nonzero(cols == i + self.row_offset)[0]
            if hits.size:
                diag_local[i] = vals[hits].sum()
        return DistributedVector(self.comm, diag_local, self.global_shape[0], self.row_offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedRowMatrix(rank={self.comm.rank}, local_rows={self.local_rows}, "
            f"global_shape={self.global_shape})"
        )
