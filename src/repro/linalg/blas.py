"""Dense kernels used by the Krylov solvers.

Only the handful of operations GMRES/CG need beyond plain NumPy are
implemented: Givens rotations (for the incremental QR of the Hessenberg
matrix), back substitution, axpy and the two Gram-Schmidt variants.
Keeping them here (rather than inlined in the solvers) lets the
skeptical-programming layer wrap and check them, and lets the tests
exercise them in isolation.

Precision: the Gram-Schmidt block kernels follow the dtype of their
operands (a float32 basis orthogonalizes in float32 -- the
memory-traffic lever of the mixed-precision layer), while the Givens
rotations, Hessenberg least-squares state and back substitution stay
float64 unconditionally: they are O(m) per cycle, cost nothing, and
keeping the outer recurrence in full precision is what makes reduced
inner precision safe (the iterative-refinement shape).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import check_array_1d

__all__ = [
    "axpy",
    "givens_rotation",
    "givens_rotation_many",
    "apply_givens",
    "rotate_hessenberg_column",
    "back_substitution",
    "HessenbergLsq",
    "modified_gram_schmidt_step",
    "classical_gram_schmidt_step",
    "cgs2_step",
]


def _as_float(x) -> np.ndarray:
    """float64 no-op view, float32 preserved, everything else -> float64."""
    arr = np.asarray(x)
    if arr.dtype == np.float64 or arr.dtype == np.float32:
        return arr
    return np.asarray(arr, dtype=np.float64)


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Return ``alpha * x + y`` (out of place)."""
    x = check_array_1d(x, "x", dtype=np.float64)
    y = check_array_1d(y, "y", dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    return alpha * x + y


def givens_rotation(a: float, b: float) -> Tuple[float, float]:
    """Return ``(c, s)`` such that ``[c s; -s c] @ [a; b] = [r; 0]``.

    Uses the numerically careful formulation that avoids overflow for
    large ``|a|`` or ``|b|``.
    """
    a = float(a)
    b = float(b)
    if b == 0.0:
        return 1.0, 0.0
    if a == 0.0:
        return 0.0, 1.0
    if abs(b) > abs(a):
        t = a / b
        s = 1.0 / math.sqrt(1.0 + t * t)
        c = s * t
    else:
        t = b / a
        c = 1.0 / math.sqrt(1.0 + t * t)
        s = c * t
    return float(c), float(s)


def givens_rotation_many(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`givens_rotation` over a batch of ``(a, b)`` pairs.

    Replicates the scalar branch structure with ``np.where`` masks; each
    lane's ``(c, s)`` is bit-for-bit the scalar result, including the
    NaN cases (comparisons against NaN are False both in Python and in
    the mask chain, so a NaN input lands in the same final branch).  All
    branches are evaluated eagerly, so the out-of-branch divisions are
    run under ``errstate`` suppression and discarded by the masks.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        t_big = a / b
        s_big = 1.0 / np.sqrt(1.0 + t_big * t_big)
        c_big = s_big * t_big
        t_small = b / a
        c_small = 1.0 / np.sqrt(1.0 + t_small * t_small)
        s_small = c_small * t_small
    b_zero = b == 0.0
    a_zero = (a == 0.0) & ~b_zero
    big = (np.abs(b) > np.abs(a)) & ~b_zero & ~a_zero
    c = np.where(b_zero, 1.0, np.where(a_zero, 0.0, np.where(big, c_big, c_small)))
    s = np.where(b_zero, 0.0, np.where(a_zero, 1.0, np.where(big, s_big, s_small)))
    return c, s


def apply_givens(c: float, s: float, a: float, b: float) -> Tuple[float, float]:
    """Apply the rotation ``(c, s)`` to the pair ``(a, b)``."""
    return float(c * a + s * b), float(-s * a + c * b)


def rotate_hessenberg_column(col: list, g: list, givens: list, j: int) -> float:
    """Incremental QR update for GMRES Hessenberg column ``j``, in place.

    Applies the accumulated rotations in ``givens`` to ``col`` (the new
    column as ``j + 2`` Python floats), computes and appends the
    rotation that annihilates the subdiagonal entry, and applies it to
    ``col`` and to the least-squares right-hand side ``g``.  Operates
    on plain lists: the column is tiny and per-element ndarray indexing
    would dominate this O(j) recurrence at small n.  Returns the new
    recurrence residual ``|g[j + 1]|``.
    """
    for i, (c, s) in enumerate(givens):
        a, b = col[i], col[i + 1]
        col[i] = c * a + s * b
        col[i + 1] = c * b - s * a
    c, s = givens_rotation(col[j], col[j + 1])
    givens.append((c, s))
    a, b = col[j], col[j + 1]
    col[j] = c * a + s * b
    col[j + 1] = c * b - s * a
    a, b = g[j], g[j + 1]
    g[j] = c * a + s * b
    g[j + 1] = c * b - s * a
    return abs(g[j + 1])


def back_substitution(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``R y = rhs`` for upper-triangular ``R``.

    Raises ``np.linalg.LinAlgError`` when a diagonal entry is zero (the
    Hessenberg QR broke down), so callers can treat breakdown
    explicitly rather than silently dividing by zero.
    """
    upper = np.asarray(upper, dtype=np.float64)
    rhs = check_array_1d(rhs, "rhs", dtype=np.float64)
    n = rhs.size
    if upper.shape[0] < n or upper.shape[1] < n:
        raise ValueError("triangular factor too small for the right-hand side")
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    pivots = np.diagonal(upper)[:n]
    bad = np.flatnonzero(~np.isfinite(pivots) | (pivots == 0.0))
    if bad.size:
        raise np.linalg.LinAlgError(
            f"zero or non-finite pivot at row {int(bad[-1])}"
        )
    # Work on the strictly-upper-triangular part only: GMRES stores the
    # (numerically tiny) rotated subdiagonal entries in the same array,
    # and back substitution must ignore them.
    y = np.zeros(n, dtype=np.float64)
    for i in range(n - 1, -1, -1):
        y[i] = (rhs[i] - upper[i, i + 1 : n] @ y[i + 1 : n]) / pivots[i]
    return y


class HessenbergLsq:
    """Incremental QR least-squares state of one restarted-Arnoldi cycle.

    Owns the pieces every GMRES-family solver used to hand-roll per
    cycle: the ``(m+1) x m`` Hessenberg array, the accumulated Givens
    rotations and the rotated least-squares right-hand side ``g``
    (initialized to ``beta * e_1``).  :meth:`append_column` performs the
    incremental QR update for the newest Arnoldi column and returns the
    recurrence residual ``|g[j+1]|``; :meth:`solve` back-substitutes for
    the cycle's correction coefficients.

    The stored :attr:`hessenberg` array is the live solver state the
    iteration hooks see -- fault-injection campaigns write into it, and
    :meth:`solve` reads whatever is there at restart time (the rotations
    and ``g`` are *not* re-derived from a mutated array, matching the
    pre-engine behaviour the SDC experiments were calibrated against).
    """

    def __init__(self, m: int, beta: float):
        self.hessenberg = np.zeros((int(m) + 1, int(m)), dtype=np.float64)
        self._givens: list = []
        self._g = [0.0] * (int(m) + 1)
        self._g[0] = float(beta)
        self.size = 0

    def append_column(self, coefficients: np.ndarray, h_next: float) -> float:
        """Rotate and store Arnoldi column ``size``; return the residual."""
        j = self.size
        col = coefficients.tolist()
        col.append(h_next)
        residual = rotate_hessenberg_column(col, self._g, self._givens, j)
        self.hessenberg[: j + 2, j] = col
        self.size = j + 1
        return residual

    def solve(self, k: Optional[int] = None) -> np.ndarray:
        """Back-substitute for the first ``k`` correction coefficients.

        Raises ``np.linalg.LinAlgError`` on a zero/non-finite pivot, as
        :func:`back_substitution` does.
        """
        k = self.size if k is None else int(k)
        return back_substitution(self.hessenberg[:k, :k], self._g[:k])


def modified_gram_schmidt_step(
    basis: np.ndarray, w: np.ndarray, n_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Orthogonalize ``w`` against the first ``n_vectors`` columns of ``basis``.

    Modified Gram-Schmidt: projections are subtracted one at a time,
    which is the numerically stable variant GMRES conventionally uses.

    Returns ``(w_orth, coefficients)`` where ``coefficients[j]`` is the
    projection of the *partially orthogonalized* ``w`` onto column j.
    """
    w = _as_float(w).copy()
    coefficients = np.zeros(n_vectors, dtype=np.float64)
    for j in range(n_vectors):
        v = basis[:, j]
        coefficients[j] = float(v @ w)
        w -= coefficients[j] * v
    return w, coefficients


def classical_gram_schmidt_step(
    basis: np.ndarray, w: np.ndarray, n_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Classical Gram-Schmidt step (all projections from the original w).

    Less stable than MGS but needs only a single global reduction for
    all the dot products, which is why latency-tolerant (pipelined)
    Krylov variants prefer it -- exactly the trade the RBSP model makes
    explicit.
    """
    w = _as_float(w)
    coefficients = basis[:, :n_vectors].T @ w
    w_orth = w - basis[:, :n_vectors] @ coefficients
    return w_orth, coefficients


def cgs2_step(
    basis: np.ndarray, w: np.ndarray, n_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Classical Gram-Schmidt with reorthogonalization (CGS2).

    Two CGS passes: each is two BLAS-2 calls, so the whole step is four
    matrix-vector products with the basis block -- no interpreted loop
    over basis vectors.  "Twice is enough" (Giraud et al.): the second
    pass restores orthogonality to machine precision, making CGS2 at
    least as robust as MGS while keeping the single-reduction
    communication pattern.  Returns ``(w_orth, coefficients)`` with the
    coefficient sums of both passes.
    """
    w_orth, coefficients = classical_gram_schmidt_step(basis, w, n_vectors)
    w_orth, correction = classical_gram_schmidt_step(basis, w_orth, n_vectors)
    return w_orth, coefficients + correction
