"""Dense kernels used by the Krylov solvers.

Only the handful of operations GMRES/CG need beyond plain NumPy are
implemented: Givens rotations (for the incremental QR of the Hessenberg
matrix), back substitution, axpy and the two Gram-Schmidt variants.
Keeping them here (rather than inlined in the solvers) lets the
skeptical-programming layer wrap and check them, and lets the tests
exercise them in isolation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_array_1d

__all__ = [
    "axpy",
    "givens_rotation",
    "apply_givens",
    "back_substitution",
    "modified_gram_schmidt_step",
    "classical_gram_schmidt_step",
]


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Return ``alpha * x + y`` (out of place)."""
    x = check_array_1d(x, "x", dtype=np.float64)
    y = check_array_1d(y, "y", dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    return alpha * x + y


def givens_rotation(a: float, b: float) -> Tuple[float, float]:
    """Return ``(c, s)`` such that ``[c s; -s c] @ [a; b] = [r; 0]``.

    Uses the numerically careful formulation that avoids overflow for
    large ``|a|`` or ``|b|``.
    """
    a = float(a)
    b = float(b)
    if b == 0.0:
        return 1.0, 0.0
    if a == 0.0:
        return 0.0, 1.0
    if abs(b) > abs(a):
        t = a / b
        s = 1.0 / np.sqrt(1.0 + t * t)
        c = s * t
    else:
        t = b / a
        c = 1.0 / np.sqrt(1.0 + t * t)
        s = c * t
    return float(c), float(s)


def apply_givens(c: float, s: float, a: float, b: float) -> Tuple[float, float]:
    """Apply the rotation ``(c, s)`` to the pair ``(a, b)``."""
    return float(c * a + s * b), float(-s * a + c * b)


def back_substitution(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``R y = rhs`` for upper-triangular ``R``.

    Raises ``np.linalg.LinAlgError`` when a diagonal entry is zero (the
    Hessenberg QR broke down), so callers can treat breakdown
    explicitly rather than silently dividing by zero.
    """
    upper = np.asarray(upper, dtype=np.float64)
    rhs = check_array_1d(rhs, "rhs", dtype=np.float64)
    n = rhs.size
    if upper.shape[0] < n or upper.shape[1] < n:
        raise ValueError("triangular factor too small for the right-hand side")
    y = np.zeros(n, dtype=np.float64)
    for i in range(n - 1, -1, -1):
        pivot = upper[i, i]
        if pivot == 0.0 or not np.isfinite(pivot):
            raise np.linalg.LinAlgError(f"zero or non-finite pivot at row {i}")
        y[i] = (rhs[i] - upper[i, i + 1 : n] @ y[i + 1 : n]) / pivot
    return y


def modified_gram_schmidt_step(
    basis: np.ndarray, w: np.ndarray, n_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Orthogonalize ``w`` against the first ``n_vectors`` columns of ``basis``.

    Modified Gram-Schmidt: projections are subtracted one at a time,
    which is the numerically stable variant GMRES conventionally uses.

    Returns ``(w_orth, coefficients)`` where ``coefficients[j]`` is the
    projection of the *partially orthogonalized* ``w`` onto column j.
    """
    w = np.array(w, dtype=np.float64, copy=True)
    coefficients = np.zeros(n_vectors, dtype=np.float64)
    for j in range(n_vectors):
        v = basis[:, j]
        coefficients[j] = float(v @ w)
        w -= coefficients[j] * v
    return w, coefficients


def classical_gram_schmidt_step(
    basis: np.ndarray, w: np.ndarray, n_vectors: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Classical Gram-Schmidt step (all projections from the original w).

    Less stable than MGS but needs only a single global reduction for
    all the dot products, which is why latency-tolerant (pipelined)
    Krylov variants prefer it -- exactly the trade the RBSP model makes
    explicit.
    """
    w = np.asarray(w, dtype=np.float64)
    coefficients = basis[:, :n_vectors].T @ w
    w_orth = w - basis[:, :n_vectors] @ coefficients
    return w_orth, coefficients
