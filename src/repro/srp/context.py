"""Deprecated shim: moved to :mod:`repro.reliability.environment`."""

import warnings as _warnings

_warnings.warn(
    "repro.srp.context is deprecated; import from repro.reliability.environment instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.environment import *  # noqa: E402,F401,F403
