"""Deprecated shim: moved to :mod:`repro.reliability.domain`."""

import warnings as _warnings

_warnings.warn(
    "repro.srp.region is deprecated; import from repro.reliability.domain instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.domain import *  # noqa: E402,F401,F403
