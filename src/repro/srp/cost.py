"""Deprecated shim: moved to :mod:`repro.reliability.cost`."""

import warnings as _warnings

_warnings.warn(
    "repro.srp.cost is deprecated; import from repro.reliability.cost instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.cost import *  # noqa: E402,F401,F403
