"""Selective Reliability Programming (SRP) -- paper §II-D.

SRP lets the programmer "declare specific data and compute regions to
be more reliable than the bulk reliability of the underlying system".
Since no commodity hardware exposes such a control, the reliability
boundary is enforced in software:

* :mod:`repro.srp.region` -- :class:`ReliabilityDomain` objects that
  own a fault injector (for the unreliable domain) or none (for the
  reliable domain), plus tracked array allocation so experiments can
  report how much data lives in each domain.
* :mod:`repro.srp.context` -- ``reliable()`` / ``unreliable()`` context
  managers and the :class:`SelectiveReliabilityEnvironment` tying the
  domains together.
* :mod:`repro.srp.tmr` -- triple modular redundancy executor, the
  expensive way to buy reliability that the paper notes "can still be
  much faster than a fully unreliable approach".
* :mod:`repro.srp.cost` -- the reliability cost model (time and energy
  multipliers for reliable storage/compute) used to report the benefit
  of keeping *most* work unreliable.
"""

from repro.srp.region import ReliabilityDomain, TrackedAllocation
from repro.srp.context import SelectiveReliabilityEnvironment
from repro.srp.tmr import tmr_execute, TmrDisagreement
from repro.srp.cost import ReliabilityCostModel

__all__ = [
    "ReliabilityDomain",
    "TrackedAllocation",
    "SelectiveReliabilityEnvironment",
    "tmr_execute",
    "TmrDisagreement",
    "ReliabilityCostModel",
]
