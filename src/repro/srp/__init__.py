"""Deprecated shim: :mod:`repro.srp` moved to :mod:`repro.reliability`.

The Selective Reliability Programming layer (domains, environment,
TMR, cost model) now lives in the unified reliability layer:
``repro.reliability.domain`` (with ``unreliable()`` / ``reliable()``
context managers), ``repro.reliability.environment``,
``repro.reliability.tmr`` and ``repro.reliability.cost``.  This
package re-exports the old names unchanged; update imports to
``repro.reliability``.
"""

import warnings as _warnings

_warnings.warn(
    "repro.srp is deprecated; import from repro.reliability instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.domain import (  # noqa: E402,F401
    ReliabilityDomain,
    TrackedAllocation,
)
from repro.reliability.environment import (  # noqa: E402,F401
    SelectiveReliabilityEnvironment,
    UnreliableOperator,
)
from repro.reliability.tmr import TmrDisagreement, tmr_execute  # noqa: E402,F401
from repro.reliability.cost import ReliabilityCostModel  # noqa: E402,F401

__all__ = [
    "ReliabilityDomain",
    "TrackedAllocation",
    "SelectiveReliabilityEnvironment",
    "UnreliableOperator",
    "tmr_execute",
    "TmrDisagreement",
    "ReliabilityCostModel",
]
