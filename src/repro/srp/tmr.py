"""Deprecated shim: moved to :mod:`repro.reliability.tmr`."""

import warnings as _warnings

_warnings.warn(
    "repro.srp.tmr is deprecated; import from repro.reliability.tmr instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.reliability.tmr import *  # noqa: E402,F401,F403
