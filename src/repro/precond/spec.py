"""Declarative, serializable preconditioner specifications.

A :class:`PrecondSpec` names one preconditioner *kind* plus its
parameters, and is the unit of the preconditioning layer's declarative
API -- the third sweepable axis after solvers
(:mod:`repro.krylov.registry`) and faults (:mod:`repro.reliability`).
Every registered solver's ``precond=`` parameter, every campaign
preconditioner axis and every :mod:`repro.precond.registry` entry is a
``PrecondSpec`` (or something :meth:`PrecondSpec.parse` can turn into
one).

Three interchangeable wire forms exist, mirroring
:class:`~repro.reliability.spec.FaultSpec`:

* **compact strings** -- ``"ssor:omega=1.2"`` -- the form campaigns
  sweep and humans type;
* **dicts** -- ``{"kind": "ssor", "params": {"omega": 1.2}}`` -- the
  form the JSONL result store persists;
* **PrecondSpec objects** -- what the builders consume.

String grammar (a single-kind subset of the fault-spec grammar; see
CAMPAIGNS.md for the full manual)::

    SPEC   := KIND [ ":" PARAM ("," PARAM)* ]
    PARAM  := NAME "=" VALUE
    VALUE  := int | float | bool | "none" | NAME

Kinds and their parameters:

==========  ==============================  ===========================
kind        parameters (defaults)           builds
==========  ==============================  ===========================
``none``    --                              no preconditioning (M = I)
``jacobi``  --                              diagonal (Jacobi) scaling
``ssor``    ``omega=1.0`` in (0, 2)         symmetric SOR sweeps
``poly``    ``k=2`` (degree, >= 0)          Neumann-series polynomial
``bjacobi`` ``bs=8`` (rows per block, >=1)  block Jacobi
==========  ==============================  ===========================

Examples: ``"none"``, ``"jacobi"``, ``"ssor:omega=1.2"``,
``"poly:k=4"``, ``"bjacobi:bs=8"``.

Parsing and formatting round-trip exactly (floats use ``repr``, the
same canonicalization as fault specs), which makes preconditioner
specs usable as campaign scenario-key material.  Unknown kinds and
unknown parameter names are rejected at construction time, so a typo
in a sweep axis fails before any scenario runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple, Union

from repro.reliability.spec import (
    _NAME_RE,
    _normalize_value,
    format_spec_value,
    parse_kind_params,
)

__all__ = ["PrecondSpec", "PRECOND_KINDS"]

# kind -> the parameter names its builder understands.
PRECOND_KINDS: Dict[str, Tuple[str, ...]] = {
    "none": (),
    "jacobi": (),
    "ssor": ("omega",),
    "poly": ("k",),
    "bjacobi": ("bs",),
}


@dataclass(frozen=True)
class PrecondSpec:
    """One declarative preconditioner configuration.

    Attributes
    ----------
    kind:
        Preconditioner kind (``"none"``, ``"jacobi"``, ``"ssor"``,
        ``"poly"``, ``"bjacobi"``).  Validated against
        :data:`PRECOND_KINDS` at construction time.
    params:
        Builder parameters (read-only mapping of scalars); unknown
        parameter names for the kind are rejected with the valid set
        in the message.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        kind = self.kind.lower() if isinstance(self.kind, str) else self.kind
        if kind not in PRECOND_KINDS:
            raise ValueError(
                f"unknown preconditioner kind {self.kind!r} "
                f"(known: {sorted(PRECOND_KINDS)})"
            )
        allowed = PRECOND_KINDS[kind]
        normalized = {}
        for name in sorted(self.params):
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid parameter name {name!r}")
            if name not in allowed:
                raise ValueError(
                    f"preconditioner kind {kind!r} does not take parameter "
                    f"{name!r} (valid: {list(allowed) or 'none'})"
                )
            normalized[name] = _normalize_value(self.params[name])
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "params", normalized)

    # -- parsing -------------------------------------------------------
    @classmethod
    def parse(cls, value: Union[str, Mapping, "PrecondSpec"]) -> "PrecondSpec":
        """Coerce a string, dict or PrecondSpec into a PrecondSpec."""
        if isinstance(value, PrecondSpec):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, str):
            return cls._parse_string(value)
        raise TypeError(
            f"cannot parse a preconditioner spec from {type(value).__name__}"
        )

    @classmethod
    def _parse_string(cls, text: str) -> "PrecondSpec":
        return cls(*parse_kind_params(text, "preconditioner spec"))

    # -- serialization -------------------------------------------------
    def to_string(self) -> str:
        """Compact spec-string form; inverse of :meth:`parse`."""
        if not self.params:
            return self.kind
        body = ",".join(
            f"{name}={format_spec_value(value)}"
            for name, value in self.params.items()
        )
        return f"{self.kind}:{body}"

    def to_dict(self) -> dict:
        """JSON-compatible dict form; inverse of :meth:`from_dict`."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "PrecondSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a loose dict)."""
        if "kind" not in data:
            raise ValueError("preconditioner spec dicts need a 'kind' entry")
        extra = set(data) - {"kind", "params"}
        if extra:
            # Loose form: {"kind": "ssor", "omega": 1.2}.
            params = {k: data[k] for k in data if k != "kind"}
            return cls(str(data["kind"]), params)
        return cls(str(data["kind"]), dict(data.get("params", {})))

    # -- convenience ---------------------------------------------------
    def with_params(self, **overrides: Any) -> "PrecondSpec":
        """Return a copy with ``overrides`` merged into the parameters.

        ``None`` overrides are dropped (they mean "keep the default"),
        so callers can forward optional driver arguments verbatim.
        """
        merged = dict(self.params)
        merged.update({k: v for k, v in overrides.items() if v is not None})
        return PrecondSpec(self.kind, merged)

    def get(self, name: str, default: Any = None) -> Any:
        """Parameter lookup with a default."""
        return self.params.get(name, default)

    def __str__(self) -> str:
        return self.to_string()
