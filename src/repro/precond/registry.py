"""Named preconditioner registry: the preconditioner axis campaigns sweep.

Mirrors :mod:`repro.krylov.registry` and
:mod:`repro.reliability.registry`: each entry names one declarative
:class:`~repro.precond.spec.PrecondSpec` under a stable key, so
drivers, campaigns and the CLI resolve preconditioners *by name* -- or
by inline spec string -- and sweep solver x preconditioner x fault
grids without constructing :class:`~repro.linalg.precond.Preconditioner`
objects by hand.

Two resolution entry points exist:

* :func:`parse_precond` -- anything precond-shaped to a
  :class:`PrecondSpec` (no matrix needed; what campaigns and scenario
  keys use);
* :func:`resolve_preconds` -- anything precond-shaped to a *built*
  preconditioner for a concrete matrix (what solvers call).  Already-
  built preconditioner objects pass through untouched, so a fault-
  injecting proxy from
  :meth:`repro.reliability.ReliabilityDomain.preconditioner` can be
  handed to any registered solver's ``precond=`` parameter.

Build failures are actionable: parameter validation errors raised by
the underlying preconditioner classes are re-raised naming the
offending spec string (``invalid preconditioner spec 'ssor:omega=2.5':
omega must lie in (0, 2) for SSOR``), so a bad sweep value points at
the sweep axis, not at a bare ``ValueError`` deep in ``linalg``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.linalg.precond import (
    BlockJacobiPreconditioner,
    JacobiPreconditioner,
    NeumannPolynomialPreconditioner,
    Preconditioner,
    SsorPreconditioner,
)
from repro.precond.spec import PrecondSpec

__all__ = [
    "RegisteredPreconditioner",
    "PrecondRegistry",
    "default_precond_registry",
    "precond_names",
    "parse_precond",
    "resolve_preconds",
    "build_preconditioner",
]


def build_preconditioner(
    spec: Union[str, Mapping, PrecondSpec], matrix
) -> Optional[Preconditioner]:
    """Instantiate the preconditioner a spec describes, for ``matrix``.

    ``"none"`` builds ``None`` (the exact no-preconditioner solver
    path, with no identity-apply overhead).  Parameter validation
    errors are re-raised naming the offending spec string.
    """
    spec = PrecondSpec.parse(spec)
    if spec.kind == "none":
        return None
    if matrix is None or not hasattr(matrix, "diagonal_values"):
        raise ValueError(
            f"building preconditioner spec {spec.to_string()!r} needs a "
            f"CsrMatrix (got {type(matrix).__name__}); pass the clean "
            f"matrix via precond_matrix= when the operator is wrapped"
        )
    try:
        if spec.kind == "jacobi":
            return JacobiPreconditioner(matrix)
        if spec.kind == "ssor":
            return SsorPreconditioner(matrix, omega=float(spec.get("omega", 1.0)))
        if spec.kind == "poly":
            return NeumannPolynomialPreconditioner(
                matrix, degree=int(spec.get("k", 2))
            )
        # spec.kind == "bjacobi" (PrecondSpec already validated the kind)
        block_size = int(spec.get("bs", 8))
        if block_size < 1:
            raise ValueError("bs (rows per block) must be >= 1")
        n_blocks = min(
            matrix.n_rows, max(1, math.ceil(matrix.n_rows / block_size))
        )
        return BlockJacobiPreconditioner(matrix, n_blocks)
    except (ValueError, TypeError) as exc:
        raise ValueError(
            f"invalid preconditioner spec {spec.to_string()!r}: {exc}"
        ) from exc


@dataclass(frozen=True)
class RegisteredPreconditioner:
    """One named preconditioner configuration.

    Attributes
    ----------
    name:
        Stable registry key (``"jacobi"``, ``"bjacobi8"``, ...).
    spec:
        The declarative configuration the name stands for.
    title:
        One-line human description.
    experiments:
        Experiment ids whose drivers/benchmarks exercise this
        preconditioner (drives ``run_benchmarks.py --precond``).
    """

    name: str
    spec: PrecondSpec
    title: str
    experiments: Tuple[str, ...] = ()

    def build(self, matrix, **overrides) -> Optional[Preconditioner]:
        """Instantiate for ``matrix``, with optional parameter overrides."""
        spec = self.spec.with_params(**overrides) if overrides else self.spec
        return build_preconditioner(spec, matrix)


class PrecondRegistry:
    """Index of named preconditioner configurations."""

    def __init__(self, entries: Optional[List[RegisteredPreconditioner]] = None):
        self._by_name: Dict[str, RegisteredPreconditioner] = {}
        for entry in entries if entries is not None else _builtin_preconds():
            self.add(entry)

    def add(self, entry: RegisteredPreconditioner) -> None:
        key = entry.name.lower()
        if key in self._by_name:
            raise ValueError(f"duplicate preconditioner name {key!r}")
        self._by_name[key] = entry

    def get(self, name: str) -> RegisteredPreconditioner:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown preconditioner {name!r} "
                f"(known: {', '.join(self.names())})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._by_name

    def __iter__(self):
        return iter(sorted(self._by_name.values(), key=lambda e: e.name))

    def __len__(self) -> int:
        return len(self._by_name)


def _builtin_preconds() -> List[RegisteredPreconditioner]:
    def spec(text: str) -> PrecondSpec:
        return PrecondSpec.parse(text)

    return [
        RegisteredPreconditioner(
            name="none",
            spec=spec("none"),
            title="No preconditioning (M = I)",
            experiments=("E9",),
        ),
        RegisteredPreconditioner(
            name="jacobi",
            spec=spec("jacobi"),
            title="Diagonal (Jacobi) scaling",
            experiments=("E9",),
        ),
        RegisteredPreconditioner(
            name="ssor",
            spec=spec("ssor:omega=1.0"),
            title="Symmetric SOR, one forward + one backward sweep",
            experiments=("E9",),
        ),
        RegisteredPreconditioner(
            name="ssor_over",
            spec=spec("ssor:omega=1.2"),
            title="Over-relaxed symmetric SOR (omega = 1.2)",
            experiments=("E9",),
        ),
        RegisteredPreconditioner(
            name="poly2",
            spec=spec("poly:k=2"),
            title="Neumann-series polynomial, degree 2 (inner-product-free)",
            experiments=("E9",),
        ),
        RegisteredPreconditioner(
            name="poly4",
            spec=spec("poly:k=4"),
            title="Neumann-series polynomial, degree 4 (inner-product-free)",
            experiments=("E9",),
        ),
        RegisteredPreconditioner(
            name="bjacobi8",
            spec=spec("bjacobi:bs=8"),
            title="Block Jacobi, 8-row blocks (per-subdomain solves)",
            experiments=("E9",),
        ),
    ]


_DEFAULT: Optional[PrecondRegistry] = None


def default_precond_registry() -> PrecondRegistry:
    """The process-wide registry of named preconditioners."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PrecondRegistry()
    return _DEFAULT


def precond_names() -> List[str]:
    """Sorted names of all registered preconditioners."""
    return default_precond_registry().names()


def parse_precond(
    value: Union[None, str, Mapping, PrecondSpec]
) -> PrecondSpec:
    """Resolve anything precond-shaped into a :class:`PrecondSpec`.

    ``None`` resolves to the ``"none"`` spec.  Strings are looked up in
    the registry first; anything else is parsed as a compact spec
    string.  Already-built preconditioner objects are *not* accepted
    here (they have no declarative form); use :func:`resolve_preconds`
    when proxies or instances may appear.
    """
    if value is None:
        return PrecondSpec("none")
    if isinstance(value, str) and value in default_precond_registry():
        return default_precond_registry().get(value).spec
    return PrecondSpec.parse(value)


def resolve_preconds(
    value,
    matrix=None,
    **overrides,
) -> Optional[Preconditioner]:
    """Resolve anything precond-shaped into a built preconditioner.

    ``None`` and ``"none"`` resolve to ``None`` (the no-preconditioner
    solver path).  Already-built preconditioner objects -- anything
    with an ``apply`` method, or a bare callable -- pass through
    untouched (overrides are rejected there, since there is no spec to
    override).  Strings are looked up in the registry first; anything
    else is parsed as a compact spec string and built against
    ``matrix``.  ``overrides`` merge into the spec's parameters
    (``None`` values are ignored).
    """
    if value is not None and (hasattr(value, "apply") or callable(value)):
        if overrides:
            raise ValueError(
                "parameter overrides require a spec-shaped preconditioner, "
                f"not an already-built {type(value).__name__}"
            )
        return value
    spec = parse_precond(value)
    if overrides:
        spec = spec.with_params(**overrides)
    return build_preconditioner(spec, matrix)
