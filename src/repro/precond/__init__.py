"""The declarative preconditioning layer: the third sweepable axis.

The paper's central claim -- *selective reliability* -- is that the
preconditioner is exactly the part of a flexible Krylov solve that can
run unreliably: a corrupted ``M^{-1} v`` only slows convergence, it
never corrupts a converged answer, because the reliable outer
iteration vets and, at worst, discards what the preconditioner returns
(Heroux, HPDC'13, the FT-GMRES inner/outer argument).  This subpackage
makes that axis first-class, mirroring :mod:`repro.krylov.registry`
(solvers) and :mod:`repro.reliability` (faults): one serializable
:class:`PrecondSpec` model, one named registry, and one resolution
entry point (:func:`resolve_preconds`) consumed uniformly by every
registered solver's ``precond=`` parameter, the campaign layer and the
experiment drivers -- so preconditioners are named, serializable and
sweepable exactly like solvers and fault models.

Quick tour::

    from repro import precond
    from repro.krylov import default_solver_registry
    from repro.linalg import poisson_2d

    A = poisson_2d(10)
    M = precond.resolve_preconds("ssor:omega=1.2", matrix=A)

    # ... or let any registered solver resolve the spec itself:
    solver = default_solver_registry().get("fgmres")
    result = solver.solve(A, b, precond="bjacobi:bs=8")

    # selective reliability: only M^{-1} v runs unreliably
    from repro import reliability
    with reliability.unreliable("bitflip:p=1e-4", seed=7) as dom:
        result = solver.solve(A, b, precond=dom.preconditioner(M))

Module map:

* :mod:`~repro.precond.spec` -- declarative, serializable
  :class:`PrecondSpec` (compact-string / dict round-trip, validated
  kinds and parameter names).
* :mod:`~repro.precond.registry` -- named preconditioners,
  :func:`parse_precond` / :func:`resolve_preconds` /
  :func:`build_preconditioner`.

The concrete preconditioner classes (Jacobi, SSOR, Neumann polynomial,
block Jacobi) stay in :mod:`repro.linalg.precond`; this layer only
names, serializes and builds them.
"""

from repro.precond.spec import PRECOND_KINDS, PrecondSpec
from repro.precond.registry import (
    PrecondRegistry,
    RegisteredPreconditioner,
    build_preconditioner,
    default_precond_registry,
    parse_precond,
    precond_names,
    resolve_preconds,
)

__all__ = [
    "PrecondSpec",
    "PRECOND_KINDS",
    "RegisteredPreconditioner",
    "PrecondRegistry",
    "default_precond_registry",
    "precond_names",
    "parse_precond",
    "resolve_preconds",
    "build_preconditioner",
]
