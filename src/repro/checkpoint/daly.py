"""Analytic CPR efficiency models (re-exported).

The Young/Daly optimal checkpoint interval and the first-order
efficiency models live in :mod:`repro.machine.efficiency`; they are
re-exported here so that everything checkpoint-related can be imported
from :mod:`repro.checkpoint`, which is where readers of the paper will
look for it.
"""

from repro.machine.efficiency import (
    cpr_efficiency,
    daly_optimal_interval,
    efficiency_crossover_mtbf,
    lflr_efficiency,
)

__all__ = [
    "daly_optimal_interval",
    "cpr_efficiency",
    "lflr_efficiency",
    "efficiency_crossover_mtbf",
]
