"""Global checkpoint/restart (CPR) -- the baseline the paper moves beyond.

The paper's starting point (§I) is that applications have historically
relied on "checkpoint-restart (CPR): occasionally storing a snapshot of
application state and restarting from that saved state", and that this
model stops scaling.  To make that comparison concrete we implement the
baseline:

* :mod:`repro.checkpoint.store` -- an in-memory checkpoint store with a
  cost model for writing/reading global snapshots.
* :mod:`repro.checkpoint.cpr` -- a CPR execution driver: run a
  step-based application, checkpoint every ``k`` steps, and on a
  failure lose *everything* since the last checkpoint, pay the restart
  cost, and recompute (experiment E4's baseline).
* :mod:`repro.checkpoint.daly` -- re-export of the Young/Daly analytic
  efficiency model from :mod:`repro.machine.efficiency` (experiment
  E7).
"""

from repro.checkpoint.store import CheckpointStore, Checkpoint
from repro.checkpoint.cpr import CprResult, run_cpr_stepped
from repro.checkpoint.daly import daly_optimal_interval, cpr_efficiency, lflr_efficiency

__all__ = [
    "CheckpointStore",
    "Checkpoint",
    "CprResult",
    "run_cpr_stepped",
    "daly_optimal_interval",
    "cpr_efficiency",
    "lflr_efficiency",
]
