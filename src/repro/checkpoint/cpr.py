"""The checkpoint/restart execution driver.

:func:`run_cpr_stepped` executes a step-based application under the
classical global CPR discipline: checkpoint every ``interval`` steps;
when a failure strikes, *all* ranks are killed, the job pays the
restart overhead plus checkpoint read time, and execution resumes from
the last checkpoint -- recomputing every step since.  Failures are
driven by the same :class:`~repro.reliability.process.FailurePlan` the LFLR
driver uses, so experiment E4 can compare the two recovery disciplines
on identical failure traces.

The driver is sequential (it executes the global state transition
directly) because CPR's cost structure -- full checkpoint writes, full
restarts, globally lost work -- does not depend on how the step itself
is parallelized; the per-step compute time is taken from the machine
model so the virtual-time comparison against LFLR is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.checkpoint.store import CheckpointStore
from repro.reliability.process import FailurePlan
from repro.machine.model import MachineModel
from repro.utils.validation import check_integer, check_positive

__all__ = ["CprResult", "run_cpr_stepped"]


@dataclass
class CprResult:
    """Outcome of a checkpoint/restart run.

    Attributes
    ----------
    state:
        Final application state.
    n_steps:
        Number of application steps completed (excluding recomputation).
    steps_recomputed:
        Steps that had to be re-executed after restarts.
    n_restarts:
        Number of global restarts.
    virtual_time:
        Total modeled execution time including checkpoints, restarts
        and recomputation.
    checkpoint_time / restart_time:
        Time spent writing checkpoints and performing restarts.
    """

    state: Dict[str, Any]
    n_steps: int
    steps_recomputed: int
    n_restarts: int
    virtual_time: float
    checkpoint_time: float
    restart_time: float
    info: Dict[str, Any] = field(default_factory=dict)


def run_cpr_stepped(
    step_function: Callable[[Dict[str, Any], int], Dict[str, Any]],
    initial_state: Dict[str, Any],
    n_steps: int,
    *,
    machine: Optional[MachineModel] = None,
    n_ranks: int = 4,
    interval: int = 10,
    step_time: float = 1e-3,
    failure_plan: Optional[FailurePlan] = None,
) -> CprResult:
    """Run a step-based computation under global checkpoint/restart.

    Parameters
    ----------
    step_function:
        ``new_state = step_function(state, step_index)``; must be pure
        (it is re-invoked during recomputation).
    initial_state:
        The starting state dictionary (NumPy arrays and scalars).
    n_steps:
        Number of application steps to complete.
    machine:
        Machine model for checkpoint/restart costs.
    n_ranks:
        Number of ranks the equivalent parallel job would use; scales
        the checkpoint bandwidth and maps failure-plan ranks.
    interval:
        Checkpoint every ``interval`` steps.
    step_time:
        Modeled wall time of one application step (virtual seconds).
    failure_plan:
        Hard-fault plan; any failure of any rank kills the whole job
        (that is the point of the baseline).

    Returns
    -------
    CprResult
    """
    check_integer(n_steps, "n_steps")
    check_integer(interval, "interval")
    check_integer(n_ranks, "n_ranks")
    check_positive(step_time, "step_time")
    if interval <= 0 or n_steps < 0:
        raise ValueError("interval must be positive and n_steps non-negative")
    machine = machine if machine is not None else MachineModel.commodity_cluster()
    failure_plan = failure_plan if failure_plan is not None else FailurePlan.none()
    store = CheckpointStore(machine, n_ranks=n_ranks)

    # Any rank's failure kills the job: collapse the plan to a sorted list
    # of job-failure times.
    failure_times = sorted(f.time for f in failure_plan.failures)
    next_failure = 0

    state = {k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in initial_state.items()}
    clock = 0.0
    completed = 0
    steps_recomputed = 0
    n_restarts = 0
    restart_time_total = 0.0

    # Initial checkpoint so a very early failure does not restart from an
    # undefined state.
    checkpoint = store.write(0, state)
    clock += checkpoint.write_time
    last_checkpoint_step = 0

    while completed < n_steps:
        step_start = clock
        step_end = clock + step_time
        # Does a failure strike during this step?
        if next_failure < len(failure_times) and failure_times[next_failure] <= step_end:
            # The job dies: pay restart, reload the last checkpoint, and
            # recompute everything since.
            clock = max(failure_times[next_failure], step_start)
            next_failure += 1
            n_restarts += 1
            restart = store.read_latest()
            restart_cost = machine.restart_overhead + (
                machine.checkpoint_time(restart.nbytes / n_ranks) if restart else 0.0
            )
            restart_time_total += restart_cost
            clock += restart_cost
            if restart is not None:
                state = restart.state
                steps_recomputed += completed - restart.step
                completed = restart.step
                last_checkpoint_step = restart.step
            else:  # pragma: no cover - initial checkpoint always exists
                state = {k: (v.copy() if isinstance(v, np.ndarray) else v)
                         for k, v in initial_state.items()}
                steps_recomputed += completed
                completed = 0
            continue
        # Normal step.
        state = step_function(state, completed)
        completed += 1
        clock = step_end
        if completed % interval == 0 and completed < n_steps:
            checkpoint = store.write(completed, state)
            clock += checkpoint.write_time
            last_checkpoint_step = completed

    return CprResult(
        state=state,
        n_steps=n_steps,
        steps_recomputed=steps_recomputed,
        n_restarts=n_restarts,
        virtual_time=clock,
        checkpoint_time=store.total_write_time,
        restart_time=restart_time_total,
        info={
            "checkpoints_written": store.writes,
            "last_checkpoint_step": last_checkpoint_step,
            "interval": interval,
        },
    )
