"""In-memory checkpoint store with an I/O cost model.

A global checkpoint stores the *entire* application state (all ranks'
blocks) to stable storage; the time that takes is governed by the
machine model's checkpoint bandwidth and is the quantity whose growth
with machine size dooms pure CPR.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.machine.model import MachineModel
from repro.simmpi.comm import payload_nbytes
from repro.utils.validation import check_integer

__all__ = ["Checkpoint", "CheckpointStore"]


def _deep_copy(state: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in state.items():
        out[key] = value.copy() if isinstance(value, np.ndarray) else copy.deepcopy(value)
    return out


@dataclass
class Checkpoint:
    """One global snapshot."""

    step: int
    state: Dict[str, Any]
    nbytes: int
    write_time: float


class CheckpointStore:
    """Stores global checkpoints and accounts for their I/O cost.

    Parameters
    ----------
    machine:
        Machine model supplying the checkpoint bandwidth.
    n_ranks:
        Number of ranks whose state a global checkpoint contains; the
        write time is ``total_bytes / (n_ranks * checkpoint_bandwidth)``
        assuming ranks write their shares in parallel.
    keep:
        Number of most recent checkpoints retained.
    """

    def __init__(self, machine: MachineModel, n_ranks: int = 1, *, keep: int = 2):
        check_integer(n_ranks, "n_ranks")
        check_integer(keep, "keep")
        if n_ranks <= 0 or keep <= 0:
            raise ValueError("n_ranks and keep must be positive")
        self.machine = machine
        self.n_ranks = int(n_ranks)
        self.keep = int(keep)
        self._checkpoints: List[Checkpoint] = []
        self.total_write_time = 0.0
        self.total_read_time = 0.0
        self.writes = 0
        self.reads = 0

    def write(self, step: int, state: Dict[str, Any]) -> Checkpoint:
        """Store a global checkpoint of ``state`` labelled with ``step``."""
        check_integer(step, "step")
        nbytes = payload_nbytes(state)
        per_rank = nbytes / self.n_ranks
        write_time = self.machine.checkpoint_time(per_rank)
        checkpoint = Checkpoint(
            step=int(step), state=_deep_copy(state), nbytes=nbytes, write_time=write_time
        )
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.keep:
            self._checkpoints.pop(0)
        self.total_write_time += write_time
        self.writes += 1
        return checkpoint

    def latest(self) -> Optional[Checkpoint]:
        """Most recent checkpoint, or ``None`` if nothing was written."""
        return self._checkpoints[-1] if self._checkpoints else None

    def read_latest(self) -> Optional[Checkpoint]:
        """Read back the most recent checkpoint (accounting restart I/O)."""
        checkpoint = self.latest()
        if checkpoint is None:
            return None
        per_rank = checkpoint.nbytes / self.n_ranks
        read_time = self.machine.checkpoint_time(per_rank)
        self.total_read_time += read_time
        self.reads += 1
        return Checkpoint(
            step=checkpoint.step,
            state=_deep_copy(checkpoint.state),
            nbytes=checkpoint.nbytes,
            write_time=checkpoint.write_time,
        )

    @property
    def n_stored(self) -> int:
        """Number of checkpoints currently retained."""
        return len(self._checkpoints)
