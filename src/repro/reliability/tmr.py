"""Triple modular redundancy (TMR).

The brute-force way to make a computation reliable: run it three times
and vote.  The paper notes that "even very expensive approaches such as
triple modular redundancy (TMR) can still be much faster than a fully
unreliable approach" -- because only the small reliable region pays the
3x cost.  :func:`tmr_execute` provides the executor; experiment E6 uses
it to price the reliable outer iteration of FT-GMRES.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

import numpy as np

__all__ = ["TmrDisagreement", "tmr_execute"]


class TmrDisagreement(RuntimeError):
    """All three TMR replicas disagreed; no majority value exists."""

    def __init__(self, results: Tuple[Any, Any, Any]):
        super().__init__("TMR voting failed: all three replicas disagree")
        self.results = results


def _agree(a: Any, b: Any, rtol: float, atol: float) -> bool:
    """Whether two replica results agree to within tolerance."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr = np.asarray(a, dtype=np.float64)
        b_arr = np.asarray(b, dtype=np.float64)
        if a_arr.shape != b_arr.shape:
            return False
        both_finite = np.isfinite(a_arr) & np.isfinite(b_arr)
        if not both_finite.all():
            return bool(np.array_equal(np.isfinite(a_arr), np.isfinite(b_arr)))
        return bool(np.allclose(a_arr, b_arr, rtol=rtol, atol=atol))
    if isinstance(a, (int, float, np.floating, np.integer)) and isinstance(
        b, (int, float, np.floating, np.integer)
    ):
        if not (np.isfinite(a) and np.isfinite(b)):
            return a == b
        return bool(np.isclose(float(a), float(b), rtol=rtol, atol=atol))
    return a == b


def tmr_execute(
    func: Callable[[], Any],
    *,
    rtol: float = 1e-12,
    atol: float = 0.0,
    counter: Optional[dict] = None,
) -> Any:
    """Run ``func`` three times and return the majority result.

    Parameters
    ----------
    func:
        Zero-argument callable; it is the caller's job to close over the
        inputs.  If the unreliable substrate corrupts one execution, the
        other two still agree and their value is returned.
    rtol, atol:
        Agreement tolerances for numeric results.
    counter:
        Optional dict; ``counter["tmr_executions"]`` and
        ``counter["tmr_corrections"]`` are incremented so experiments
        can report the redundancy overhead and how often it mattered.

    Raises
    ------
    TmrDisagreement
        When no two replicas agree (double fault within one TMR group).
    """
    results = (func(), func(), func())
    if counter is not None:
        counter["tmr_executions"] = counter.get("tmr_executions", 0) + 3
    a, b, c = results
    if _agree(a, b, rtol, atol):
        if not _agree(a, c, rtol, atol) and counter is not None:
            counter["tmr_corrections"] = counter.get("tmr_corrections", 0) + 1
        return a
    if _agree(a, c, rtol, atol):
        if counter is not None:
            counter["tmr_corrections"] = counter.get("tmr_corrections", 0) + 1
        return a
    if _agree(b, c, rtol, atol):
        if counter is not None:
            counter["tmr_corrections"] = counter.get("tmr_corrections", 0) + 1
        return b
    raise TmrDisagreement(results)
