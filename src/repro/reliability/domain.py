"""Reliability domains: the sanctioned way to run anything unreliably.

A :class:`ReliabilityDomain` is a named region of data/compute with a
reliability level.  The *unreliable* domain owns a fault injector that
corrupts arrays passing through it (according to whatever schedule the
experiment configures); the *reliable* domain never corrupts anything
but charges a cost multiplier (see :mod:`repro.reliability.cost`).

The module-level context managers are the declarative front door: any
operator, vector or region can be run unreliably under *any* solver by
naming a fault spec, without touching injector machinery::

    from repro import reliability

    with reliability.unreliable("bitflip:p=1e-3,bits=52..62", seed=7) as dom:
        op = dom.operator(A.matvec, flops_per_call=2 * A.nnz)
        result = gmres(op, b)          # any registered solver works
        print(dom.faults_injected())

    with reliability.reliable() as dom:
        accepted = dom.run(validate, result.x)   # never corrupted

Arrays allocated through a domain are wrapped in
:class:`TrackedAllocation` records so an experiment can report the
paper's key SRP metric: *what fraction of the data/compute actually had
to be reliable*.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.reliability.injector import ArrayInjector
from repro.utils.logging import EventLog
from repro.utils.validation import check_in

__all__ = [
    "ReliabilityDomain",
    "TrackedAllocation",
    "DomainOperator",
    "DomainPreconditioner",
    "unreliable",
    "reliable",
]


class DomainOperator:
    """An operator whose every application passes through one domain.

    Wraps a plain apply-callable so each result is ``touch``-ed by the
    owning domain (and may therefore be corrupted by its injector),
    while accounting the flops performed there.  The domain-scoped
    sibling of :class:`~repro.reliability.environment.UnreliableOperator`.

    Attributes
    ----------
    flops:
        Total flops performed through this operator so far.
    now:
        Logical timestamp handed to the fault schedule on each
        application; callers running phased computations update it
        between phases.
    """

    def __init__(self, domain: "ReliabilityDomain", apply, *,
                 flops_per_call: float = 0.0):
        self.domain = domain
        self.apply = apply
        self.flops_per_call = float(flops_per_call)
        self.flops = 0.0
        self.now = 0.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        result = self.apply(x)
        self.flops += self.flops_per_call
        self.domain.flops += self.flops_per_call
        return self.domain.touch(result, now=self.now)


class DomainPreconditioner:
    """A preconditioner whose every application passes through one domain.

    Wraps any preconditioner -- an object with an ``apply`` method, a
    bare callable, or ``None`` (the identity) -- so each ``M^{-1} v``
    result is ``touch``-ed by the owning domain and may therefore be
    corrupted by its injector.  This is the faithful selective-
    reliability wiring of the paper: handed to a flexible solver
    (``fgmres``/``ft_gmres``) whose outer iteration stays in the
    reliable domain, *only* the preconditioner application runs
    unreliably, so a corrupted ``M^{-1} v`` can slow convergence but
    never corrupt a converged answer.

    Implements the :class:`repro.linalg.precond.Preconditioner`
    protocol (``apply`` + ``__call__``), so it slots into every
    registered solver's ``precond=`` parameter unchanged.

    Attributes
    ----------
    applications:
        Number of preconditioner applications so far.
    flops:
        Total flops performed through this preconditioner so far.
    now:
        Logical timestamp handed to the fault schedule on each
        application; callers running phased computations update it
        between phases.
    """

    def __init__(self, domain: "ReliabilityDomain", preconditioner=None, *,
                 flops_per_call: float = 0.0):
        self.domain = domain
        self.preconditioner = preconditioner
        self.flops_per_call = float(flops_per_call)
        self.applications = 0
        self.flops = 0.0
        self.now = 0.0

    def _base_apply(self, vector: np.ndarray) -> np.ndarray:
        base = self.preconditioner
        if base is None:
            return np.array(vector, dtype=np.float64, copy=True)
        if hasattr(base, "apply"):
            return base.apply(vector)
        return base(vector)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1}`` through the domain (result may be corrupted)."""
        result = self._base_apply(vector)
        self.applications += 1
        self.flops += self.flops_per_call
        self.domain.flops += self.flops_per_call
        return self.domain.touch(result, now=self.now)

    def __call__(self, vector: np.ndarray) -> np.ndarray:
        return self.apply(vector)


@dataclass
class TrackedAllocation:
    """Book-keeping record of one array allocated in a domain."""

    name: str
    nbytes: int
    domain: str


class ReliabilityDomain:
    """A named data/compute region with a reliability level.

    Parameters
    ----------
    name:
        Identifier ("reliable", "unreliable", or anything descriptive).
    level:
        ``"reliable"`` or ``"unreliable"``.
    injector:
        Fault injector applied by :meth:`touch` and :meth:`run`; only
        meaningful (and required) for unreliable domains.
    log:
        Shared event log.
    """

    def __init__(
        self,
        name: str,
        level: str = "unreliable",
        injector: Optional[ArrayInjector] = None,
        log: Optional[EventLog] = None,
    ):
        self.name = name
        self.level = check_in(level, ("reliable", "unreliable"), "level")
        if self.level == "reliable" and injector is not None:
            raise ValueError("a reliable domain cannot have a fault injector")
        self.injector = injector
        self.log = log if log is not None else EventLog()
        self.allocations: List[TrackedAllocation] = []
        self.operations = 0
        self.flops = 0.0

    # ------------------------------------------------------------------
    @property
    def is_reliable(self) -> bool:
        """Whether this domain is the reliable one."""
        return self.level == "reliable"

    def allocate(self, shape, name: str = "array", fill: float = 0.0) -> np.ndarray:
        """Allocate a float64 array tracked as belonging to this domain."""
        array = np.full(shape, fill, dtype=np.float64)
        self.allocations.append(
            TrackedAllocation(name=name, nbytes=array.nbytes, domain=self.name)
        )
        return array

    def adopt(self, array: np.ndarray, name: str = "array") -> np.ndarray:
        """Track an existing array as belonging to this domain."""
        arr = np.asarray(array)
        self.allocations.append(
            TrackedAllocation(name=name, nbytes=arr.nbytes, domain=self.name)
        )
        return arr

    @property
    def bytes_allocated(self) -> int:
        """Total bytes tracked in this domain."""
        return sum(a.nbytes for a in self.allocations)

    # ------------------------------------------------------------------
    def touch(self, array: np.ndarray, now: float = 0.0) -> np.ndarray:
        """Pass data through the domain (may corrupt it if unreliable)."""
        self.operations += 1
        if self.injector is not None and self.level == "unreliable":
            arr = np.asarray(array)
            if arr.dtype != np.float32:
                # The historical coercion (a no-op view for float64);
                # float32 data passes through natively so the injector
                # flips 32-bit patterns instead of silently upcasting.
                arr = np.asarray(arr, dtype=np.float64)
            return self.injector.maybe_inject(arr, now=now)
        return array

    def run(self, func, *args, flops: float = 0.0, now: float = 0.0, **kwargs):
        """Execute ``func`` in this domain.

        The function's array result (if it is an ndarray) is passed
        through :meth:`touch`, so computations performed in the
        unreliable domain can be corrupted by the injector -- the
        software analogue of running on low-reliability hardware.
        """
        self.operations += 1
        self.flops += float(flops)
        result = func(*args, **kwargs)
        if isinstance(result, np.ndarray) and self.level == "unreliable" and self.injector is not None:
            result = self.injector.maybe_inject(result, now=now)
        return result

    def operator(self, apply, *, flops_per_call: float = 0.0) -> DomainOperator:
        """Wrap ``apply`` so every application runs in this domain."""
        return DomainOperator(self, apply, flops_per_call=flops_per_call)

    def preconditioner(self, preconditioner=None, *,
                       flops_per_call: float = 0.0) -> DomainPreconditioner:
        """Wrap a preconditioner so every ``M^{-1} v`` runs in this domain.

        ``preconditioner`` may be an object with an ``apply`` method, a
        bare callable, or ``None`` (the identity).  The returned proxy
        satisfies the :class:`~repro.linalg.precond.Preconditioner`
        protocol and can be handed to any registered solver's
        ``precond=`` parameter -- the declarative route to the paper's
        selective-reliability FGMRES, where only the preconditioner is
        unreliable.
        """
        return DomainPreconditioner(
            self, preconditioner, flops_per_call=flops_per_call
        )

    def faults_injected(self) -> int:
        """Number of faults the domain's injector has injected."""
        return self.injector.n_injected if self.injector is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReliabilityDomain(name={self.name!r}, level={self.level!r})"


@contextmanager
def unreliable(faults="none", *, seed=None, rng=None, name="unreliable",
               target=None, log=None):
    """Context manager yielding an unreliable domain for a fault spec.

    ``faults`` is anything :func:`repro.reliability.resolve_faults`
    accepts -- a registry name, a compact spec string, a dict or a
    built model.  The domain's injector draws from the canonical fault
    stream of ``(seed, name)`` (or from an explicitly shared ``rng``).
    """
    from repro.reliability.registry import resolve_faults

    model = resolve_faults(faults)
    injector = model.injector(rng, seed=seed, name=name, target=target)
    yield ReliabilityDomain(name, level="unreliable", injector=injector, log=log)


@contextmanager
def reliable(name="reliable", *, log=None):
    """Context manager yielding a reliable (never-corrupted) domain."""
    yield ReliabilityDomain(name, level="reliable", log=log)
