"""Declarative mixed-precision layer: the fourth sweepable axis.

The paper's selective-reliability argument -- bounded-error work in the
*inner* solve only slows convergence, it cannot corrupt the answer --
applies verbatim to reduced precision: a float32 matvec is a bounded
(~2^-24) perturbation of the float64 one.  This module makes precision
a first-class, serializable axis exactly like faults
(:class:`~repro.reliability.spec.FaultSpec`) and preconditioners
(:class:`~repro.precond.spec.PrecondSpec`):

* :class:`PrecisionSpec` -- one precision configuration with the three
  interchangeable wire forms (compact string / dict / object);
* a named registry (:func:`default_precision_registry`,
  :func:`parse_precision`) so campaigns sweep ``"fp32"`` by name;
* :func:`lowprecision` -- the domain context manager mirroring
  :func:`~repro.reliability.domain.unreliable`, for *selective*
  placement: wrap only the operator, only ``M^{-1} v``, or only the
  FGMRES inner solve, while the outer recurrence, Hessenberg QR and
  convergence tests stay float64 (the iterative-refinement shape).

String grammar (single-kind, like preconditioner specs)::

    SPEC   := KIND [ ":" PARAM ("," PARAM)* ]
    PARAM  := NAME "=" VALUE

Kinds and their parameters:

==========  ==========================  ===============================
kind        parameters (defaults)       meaning
==========  ==========================  ===============================
``fp64``    ``storage`` (= kind)        full double precision (default)
``fp32``    ``storage`` (= kind)        single-precision compute
==========  ==========================  ===============================

``storage`` narrows the dtype *matrix entries are stored in* without
changing the compute dtype -- ``"fp32:storage=fp16"`` streams a
half-precision matrix through single-precision accumulation, halving
matrix memory traffic again.  Storage wider than the compute dtype is
rejected (it could only waste bandwidth).

``precision="fp64"`` is the identity configuration: the solver registry
skips every cast and runs the exact default code path, bit for bit.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.linalg.csr import CsrMatrix
from repro.reliability.spec import (
    _NAME_RE,
    _normalize_value,
    format_spec_value,
    parse_kind_params,
)

__all__ = [
    "PrecisionSpec",
    "PRECISION_KINDS",
    "RegisteredPrecision",
    "PrecisionRegistry",
    "default_precision_registry",
    "precision_names",
    "parse_precision",
    "PrecisionDomain",
    "LowPrecisionOperator",
    "LowPrecisionPreconditioner",
    "lowprecision",
    "cast_operator",
    "cast_vector",
]

# kind -> the parameter names it understands.
PRECISION_KINDS: Dict[str, Tuple[str, ...]] = {
    "fp64": ("storage",),
    "fp32": ("storage",),
}

#: Compute dtype each kind names.
_COMPUTE_DTYPES: Dict[str, np.dtype] = {
    "fp64": np.dtype(np.float64),
    "fp32": np.dtype(np.float32),
}

#: Dtypes the ``storage`` parameter may name.
_STORAGE_DTYPES: Dict[str, np.dtype] = {
    "fp16": np.dtype(np.float16),
    "fp32": np.dtype(np.float32),
    "fp64": np.dtype(np.float64),
}


@dataclass(frozen=True)
class PrecisionSpec:
    """One declarative precision configuration.

    Attributes
    ----------
    kind:
        Compute precision (``"fp64"`` or ``"fp32"``).  Validated
        against :data:`PRECISION_KINDS` at construction time.
    params:
        Optional parameters; currently just ``storage`` (a dtype name
        from ``fp16``/``fp32``/``fp64``, no wider than the compute
        dtype).
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        kind = self.kind.lower() if isinstance(self.kind, str) else self.kind
        if kind not in PRECISION_KINDS:
            raise ValueError(
                f"unknown precision kind {self.kind!r} "
                f"(known: {sorted(PRECISION_KINDS)})"
            )
        allowed = PRECISION_KINDS[kind]
        normalized = {}
        for name in sorted(self.params):
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid parameter name {name!r}")
            if name not in allowed:
                raise ValueError(
                    f"precision kind {kind!r} does not take parameter "
                    f"{name!r} (valid: {list(allowed) or 'none'})"
                )
            normalized[name] = _normalize_value(self.params[name])
        if "storage" in normalized:
            storage = normalized["storage"]
            storage = storage.lower() if isinstance(storage, str) else storage
            if storage not in _STORAGE_DTYPES:
                raise ValueError(
                    f"unknown storage dtype {normalized['storage']!r} "
                    f"(known: {sorted(_STORAGE_DTYPES)})"
                )
            if _STORAGE_DTYPES[storage].itemsize > _COMPUTE_DTYPES[kind].itemsize:
                raise ValueError(
                    f"storage dtype {storage!r} is wider than the "
                    f"compute dtype of kind {kind!r}"
                )
            normalized["storage"] = storage
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "params", normalized)

    # -- dtype surface -------------------------------------------------
    @property
    def compute_dtype(self) -> np.dtype:
        """NumPy dtype vectors are computed (and accumulated) in."""
        return _COMPUTE_DTYPES[self.kind]

    @property
    def storage_dtype(self) -> np.dtype:
        """NumPy dtype matrix entries are stored in."""
        storage = self.params.get("storage")
        if storage is None:
            return self.compute_dtype
        return _STORAGE_DTYPES[storage]

    @property
    def is_default(self) -> bool:
        """Whether this spec names the exact default (all-fp64) path."""
        return (
            self.kind == "fp64"
            and self.storage_dtype == _COMPUTE_DTYPES["fp64"]
        )

    # -- parsing -------------------------------------------------------
    @classmethod
    def parse(cls, value: Union[str, Mapping, "PrecisionSpec"]) -> "PrecisionSpec":
        """Coerce a string, dict or PrecisionSpec into a PrecisionSpec."""
        if isinstance(value, PrecisionSpec):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, str):
            return cls._parse_string(value)
        raise TypeError(
            f"cannot parse a precision spec from {type(value).__name__}"
        )

    @classmethod
    def _parse_string(cls, text: str) -> "PrecisionSpec":
        return cls(*parse_kind_params(text, "precision spec"))

    # -- serialization -------------------------------------------------
    def to_string(self) -> str:
        """Compact spec-string form; inverse of :meth:`parse`."""
        if not self.params:
            return self.kind
        body = ",".join(
            f"{name}={format_spec_value(value)}"
            for name, value in self.params.items()
        )
        return f"{self.kind}:{body}"

    def to_dict(self) -> dict:
        """JSON-compatible dict form; inverse of :meth:`from_dict`."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "PrecisionSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a loose dict)."""
        if "kind" not in data:
            raise ValueError("precision spec dicts need a 'kind' entry")
        extra = set(data) - {"kind", "params"}
        if extra:
            # Loose form: {"kind": "fp32", "storage": "fp16"}.
            params = {k: data[k] for k in data if k != "kind"}
            return cls(str(data["kind"]), params)
        return cls(str(data["kind"]), dict(data.get("params", {})))

    # -- convenience ---------------------------------------------------
    def with_params(self, **overrides: Any) -> "PrecisionSpec":
        """Return a copy with ``overrides`` merged into the parameters.

        ``None`` overrides are dropped (they mean "keep the default").
        """
        merged = dict(self.params)
        merged.update({k: v for k, v in overrides.items() if v is not None})
        return PrecisionSpec(self.kind, merged)

    def get(self, name: str, default: Any = None) -> Any:
        """Parameter lookup with a default."""
        return self.params.get(name, default)

    def __str__(self) -> str:
        return self.to_string()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisteredPrecision:
    """One named precision configuration.

    Attributes
    ----------
    name:
        Stable registry key (``"fp64"``, ``"fp32"``, ...).
    spec:
        The declarative configuration the name stands for.
    title:
        One-line human description.
    experiments:
        Experiment ids whose drivers/benchmarks exercise this precision
        (drives ``run_benchmarks.py --precision``).
    """

    name: str
    spec: PrecisionSpec
    title: str
    experiments: Tuple[str, ...] = ()


class PrecisionRegistry:
    """Index of named precision configurations."""

    def __init__(self, entries: Optional[List[RegisteredPrecision]] = None):
        self._by_name: Dict[str, RegisteredPrecision] = {}
        for entry in entries if entries is not None else _builtin_precisions():
            self.add(entry)

    def add(self, entry: RegisteredPrecision) -> None:
        key = entry.name.lower()
        if key in self._by_name:
            raise ValueError(f"duplicate precision name {key!r}")
        self._by_name[key] = entry

    def get(self, name: str) -> RegisteredPrecision:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown precision {name!r} "
                f"(known: {', '.join(self.names())})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._by_name

    def __iter__(self):
        return iter(sorted(self._by_name.values(), key=lambda e: e.name))

    def __len__(self) -> int:
        return len(self._by_name)


def _builtin_precisions() -> List[RegisteredPrecision]:
    def spec(text: str) -> PrecisionSpec:
        return PrecisionSpec.parse(text)

    return [
        RegisteredPrecision(
            name="fp64",
            spec=spec("fp64"),
            title="Full double precision (the default path, bit for bit)",
            experiments=("E10",),
        ),
        RegisteredPrecision(
            name="fp32",
            spec=spec("fp32"),
            title="Single-precision compute (half the memory traffic)",
            experiments=("E10",),
        ),
        RegisteredPrecision(
            name="fp32_fp16",
            spec=spec("fp32:storage=fp16"),
            title="Single-precision compute over half-precision matrix storage",
            experiments=("E10",),
        ),
    ]


_DEFAULT: Optional[PrecisionRegistry] = None


def default_precision_registry() -> PrecisionRegistry:
    """The process-wide registry of named precision configurations."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PrecisionRegistry()
    return _DEFAULT


def precision_names() -> List[str]:
    """Sorted names of all registered precision configurations."""
    return default_precision_registry().names()


def parse_precision(
    value: Union[None, str, Mapping, "PrecisionSpec"]
) -> PrecisionSpec:
    """Resolve anything precision-shaped into a :class:`PrecisionSpec`.

    ``None`` resolves to the ``"fp64"`` (identity) spec.  Strings are
    looked up in the registry first; anything else is parsed as a
    compact spec string.
    """
    if value is None:
        return PrecisionSpec("fp64")
    if isinstance(value, str) and value in default_precision_registry():
        return default_precision_registry().get(value).spec
    return PrecisionSpec.parse(value)


# ----------------------------------------------------------------------
# Casting helpers (used by the solver registry's precision= threading)
# ----------------------------------------------------------------------
def cast_vector(x, spec: PrecisionSpec) -> np.ndarray:
    """Coerce a vector to the spec's compute dtype (no-op when it fits)."""
    return np.asarray(x, dtype=spec.compute_dtype)


class _CallableOperatorCast:
    """Wrap a callable operator so its results land in the compute dtype.

    The wrapped callable (an :class:`UnreliableOperator`, a
    :class:`DomainOperator`, a lambda over a dense array, ...) keeps
    computing in whatever precision it was built with; input is widened
    to float64 so fault injectors with float64-only bit patterns keep
    working, and the result is rounded to the compute dtype on the way
    out -- the same bounded-error contract as a native reduced-precision
    apply.
    """

    def __init__(self, operator, dtype: np.dtype):
        self._operator = operator
        self._dtype = dtype

    def __call__(self, x: np.ndarray) -> np.ndarray:
        result = self._operator(np.asarray(x, dtype=np.float64))
        return np.asarray(result, dtype=self._dtype)

    def __getattr__(self, name):
        return getattr(self._operator, name)


def cast_operator(operator, spec: PrecisionSpec):
    """Return ``operator`` converted to the spec's compute/storage dtype.

    * :class:`~repro.linalg.csr.CsrMatrix` converts natively (the real
      memory-traffic win: matvec gathers, multiplies and reduces at the
      reduced dtype);
    * dense ndarrays convert via ``astype``;
    * callables are wrapped so their *results* are rounded to the
      compute dtype (their internals are opaque);
    * the identity spec returns the operator untouched.
    """
    if spec.is_default:
        return operator
    if isinstance(operator, CsrMatrix):
        if (
            operator.dtype == spec.compute_dtype
            and operator.storage_dtype == spec.storage_dtype
        ):
            return operator
        return operator.astype(spec.compute_dtype, storage=spec.storage_dtype)
    if isinstance(operator, np.ndarray):
        return operator.astype(spec.storage_dtype)
    if callable(operator):
        return _CallableOperatorCast(operator, spec.compute_dtype)
    raise TypeError(
        f"cannot cast operator of type {type(operator).__name__} "
        f"to precision {spec.to_string()!r}"
    )


# ----------------------------------------------------------------------
# Selective placement: the lowprecision() domain
# ----------------------------------------------------------------------
class LowPrecisionOperator:
    """An operator whose every application runs at reduced precision.

    The precision sibling of
    :class:`~repro.reliability.domain.DomainOperator`: input is rounded
    down to the domain's compute dtype, the apply runs there (natively
    for :class:`CsrMatrix`), and the result is widened back to float64
    for the caller -- so an outer solver in full precision sees a
    bounded-error operator, exactly the shape of the paper's unreliable
    inner stage.

    Attributes
    ----------
    applications:
        Number of operator applications so far.
    """

    def __init__(self, domain: "PrecisionDomain", operator):
        self.domain = domain
        self.applications = 0
        spec = domain.spec
        if isinstance(operator, CsrMatrix):
            self._apply = cast_operator(operator, spec).matvec
        elif isinstance(operator, np.ndarray):
            low = cast_operator(operator, spec)
            self._apply = lambda x: low @ x
        elif callable(operator):
            self._apply = cast_operator(operator, spec)
        else:
            raise TypeError(
                f"unsupported operator type {type(operator).__name__}"
            )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        self.applications += 1
        self.domain.operations += 1
        low = self._apply(self.domain.cast_down(x))
        return self.domain.cast_up(low)


class LowPrecisionPreconditioner:
    """A preconditioner whose every ``M^{-1} v`` runs at reduced precision.

    Wraps any preconditioner -- an object with an ``apply`` method, a
    bare callable, or ``None`` (the identity) -- rounding the input
    vector down to the domain's compute dtype, rounding the result down
    (the bounded-error contract even when the wrapped object computes
    internally in float64), then widening back to float64 for the outer
    solver.  Implements the :class:`repro.linalg.precond.Preconditioner`
    protocol (``apply`` + ``__call__``), so it slots into every
    registered solver's ``precond=`` parameter -- and, via FGMRES's
    ``inner_solve``, into the paper's selective configuration where
    *only* the inner stage is low precision.

    Attributes
    ----------
    applications:
        Number of preconditioner applications so far.
    """

    def __init__(self, domain: "PrecisionDomain", preconditioner=None):
        self.domain = domain
        self.preconditioner = preconditioner
        self.applications = 0

    def _base_apply(self, vector: np.ndarray) -> np.ndarray:
        base = self.preconditioner
        if base is None:
            return vector.copy()
        if hasattr(base, "apply"):
            return base.apply(vector)
        return base(vector)

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1}`` at reduced precision; result back in float64."""
        self.applications += 1
        self.domain.operations += 1
        low = self.domain.cast_down(self._base_apply(self.domain.cast_down(vector)))
        return self.domain.cast_up(low)

    def __call__(self, vector: np.ndarray) -> np.ndarray:
        return self.apply(vector)


class PrecisionDomain:
    """A named compute region running at one (reduced) precision.

    The precision sibling of
    :class:`~repro.reliability.domain.ReliabilityDomain`: wrap only the
    pieces that should run at reduced precision and leave the rest of
    the solve in float64.  Unlike a fault injector the "corruption"
    here is deterministic rounding, so domains need no seed and no
    injection log -- just the spec and application counters.

    Parameters
    ----------
    spec:
        Anything :func:`parse_precision` accepts.
    name:
        Identifier for reports.
    """

    def __init__(self, spec="fp32", name: str = "lowprecision"):
        self.spec = parse_precision(spec)
        self.name = name
        self.operations = 0

    @property
    def compute_dtype(self) -> np.dtype:
        """Dtype wrapped applications compute in."""
        return self.spec.compute_dtype

    def cast_down(self, array) -> np.ndarray:
        """Round an array to the domain's compute dtype (no-op if it fits)."""
        return np.asarray(array, dtype=self.spec.compute_dtype)

    def cast_up(self, array) -> np.ndarray:
        """Widen an array back to float64 for the full-precision caller."""
        return np.asarray(array, dtype=np.float64)

    def operator(self, operator) -> LowPrecisionOperator:
        """Wrap an operator so every application runs in this domain."""
        return LowPrecisionOperator(self, operator)

    def preconditioner(self, preconditioner=None) -> LowPrecisionPreconditioner:
        """Wrap a preconditioner so every ``M^{-1} v`` runs in this domain."""
        return LowPrecisionPreconditioner(self, preconditioner)

    def inner_solve(self, solve) -> "LowPrecisionPreconditioner":
        """Wrap an inner-solve callable for FGMRES's ``inner_solve=``.

        ``solve`` maps a residual vector to an approximate
        ``A^{-1} v``; the wrapper hands it the rounded-down vector and
        widens the result, so the entire inner solve is the low-
        precision stage while the flexible outer iteration stays
        float64 -- the iterative-refinement shape of the paper's
        inner/outer argument.
        """
        return LowPrecisionPreconditioner(self, solve)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrecisionDomain(name={self.name!r}, "
            f"spec={self.spec.to_string()!r})"
        )


@contextmanager
def lowprecision(spec="fp32", *, name: str = "lowprecision"):
    """Context manager yielding a reduced-precision domain for a spec.

    The precision counterpart of
    :func:`~repro.reliability.domain.unreliable`::

        with reliability.lowprecision("fp32") as dom:
            op = dom.operator(A)           # fp32 matvec, fp64 outside
            result = gmres(op, b)          # outer solve stays fp64

    ``spec`` is anything :func:`parse_precision` accepts -- a registry
    name, a compact spec string, a dict or a built spec.
    """
    yield PrecisionDomain(spec, name=name)
