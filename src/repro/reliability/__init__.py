"""The unified reliability layer: declarative fault models for every layer.

The paper's premise is that future systems expose applications to soft
faults (silent data corruption) and hard faults (process loss), and its
thesis is that the response is *algorithmic and composable*.  This
subpackage makes the fault side of that thesis first-class: one
declarative :class:`FaultSpec` model, one named-model registry, and one
capability surface (:class:`FaultModel`) consumed uniformly by the
solver engine's resilience policies, the SRP domains, the simulated
MPI runtime and every experiment driver -- so the fault axis is named,
serializable and sweepable exactly like the solver axis.

Quick tour::

    from repro import reliability

    model = reliability.resolve_faults("bitflip:p=1e-4,bits=52..62")
    with reliability.unreliable(model, seed=7) as dom:
        y = dom.run(lambda: A @ x, flops=2 * A.nnz)

    combo = reliability.resolve_faults(
        reliability.compose("bitflip:p=0.02", "proc_fail:mtbf=3600"))
    hard = combo.component("proc_fail")   # -> the process-failure model

FaultSpec string forms (the sweepable wire format; full grammar in
:mod:`repro.reliability.spec` and CAMPAIGNS.md)::

    none                                  # the fault-free control
    bitflip:p=0.02,bits=52..62            # Bernoulli exponent-bit flips
    bitflip:rate=0.5,max_faults=3         # Poisson schedule, capped
    perturb:p=0.01,scale=1000.0           # SDC value perturbation
    msg_corrupt:p=0.001                   # per-send payload corruption
    proc_fail:mtbf=3600,horizon=7200      # sampled process failures
    proc_fail:times=1.5;3.0,ranks=1;2     # explicit failure plan
    basis_bitflip:bits=0..63,at=6         # targeted Krylov-basis flip
    bitflip:p=0.05+proc_fail:mtbf=3600    # "+" composes soft + hard

Every form round-trips exactly through ``FaultSpec.parse`` /
``to_string`` / ``to_dict``, and resolves through
:func:`resolve_faults` (registry name, spec string, dict, ``FaultSpec``
or built model in; ready :class:`FaultModel` out).  The sibling axes
follow the same pattern: :mod:`repro.krylov.registry` for solvers and
:mod:`repro.precond` for preconditioners (whose
:meth:`ReliabilityDomain.preconditioner` proxy runs only ``M^{-1} v``
unreliably -- selective reliability).

Module map (mechanism -> declarative layer):

* :mod:`~repro.reliability.bitflip` -- IEEE-754 bit manipulation.
* :mod:`~repro.reliability.events` -- fault-event records and campaign
  results.
* :mod:`~repro.reliability.schedule` -- deterministic / Poisson /
  Bernoulli fault schedules.
* :mod:`~repro.reliability.injector` -- array injectors.
* :mod:`~repro.reliability.process` -- process-failure (MTBF) models
  and replayable :class:`FailurePlan`.
* :mod:`~repro.reliability.sdc` -- SDC campaign helpers and the
  outcome taxonomy.
* :mod:`~repro.reliability.domain` -- :class:`ReliabilityDomain` plus
  the ``unreliable()`` / ``reliable()`` context managers.
* :mod:`~repro.reliability.environment` -- the selective-reliability
  environment pairing one reliable and one unreliable domain.
* :mod:`~repro.reliability.cost` / :mod:`~repro.reliability.tmr` --
  reliability cost model and triple modular redundancy.
* :mod:`~repro.reliability.spec` -- declarative, serializable
  :class:`FaultSpec` (compact-string / dict round-trip).
* :mod:`~repro.reliability.models` -- :class:`FaultModel` capability
  surface over the mechanisms above.
* :mod:`~repro.reliability.registry` -- named fault models and
  :func:`resolve_faults`.
* :mod:`~repro.reliability.precision` -- :class:`PrecisionSpec`, the
  named precision registry and the ``lowprecision()`` domain (reduced
  precision as a bounded-error fault model; the fourth sweepable axis).
* :mod:`~repro.reliability.seeding` -- the per-scenario seed
  derivation shared with the campaign runner.

The historical import paths ``repro.faults`` and ``repro.srp`` remain
as deprecated shims re-exporting this package.
"""

from repro.reliability.bitflip import (
    bits_of,
    flip_bit_array,
    flip_bit_float64,
    flip_random_bit,
    float_from_bits,
    relative_perturbation,
)
from repro.reliability.events import CampaignResult, FaultEvent, FaultRecord
from repro.reliability.schedule import (
    BernoulliPerCallSchedule,
    DeterministicSchedule,
    FaultSchedule,
    NeverSchedule,
    PoissonSchedule,
)
from repro.reliability.injector import (
    ArrayInjector,
    InjectionSession,
    TargetedInjector,
)
from repro.reliability.process import (
    ExponentialFailureModel,
    FailurePlan,
    ProcessFailureModel,
    WeibullFailureModel,
    system_mtbf,
)
from repro.reliability.sdc import OUTCOME_KINDS, SdcCampaign, classify_outcome
from repro.reliability.domain import (
    DomainOperator,
    DomainPreconditioner,
    ReliabilityDomain,
    TrackedAllocation,
    reliable,
    unreliable,
)
from repro.reliability.environment import (
    SelectiveReliabilityEnvironment,
    UnreliableOperator,
)
from repro.reliability.cost import ReliabilityCostModel
from repro.reliability.tmr import TmrDisagreement, tmr_execute
from repro.reliability.spec import FaultSpec, compose
from repro.reliability.models import (
    BasisBitflipFaults,
    BitflipFaults,
    CompositeFaults,
    FaultCapabilityError,
    FaultModel,
    MessageCorruptionFaults,
    MessageCorruptor,
    NoFaults,
    PerturbationFaults,
    PerturbationInjector,
    ProcessFaults,
    build_model,
)
from repro.reliability.registry import (
    FaultRegistry,
    RegisteredFaultModel,
    default_fault_registry,
    fault_names,
    resolve_faults,
)
from repro.reliability.precision import (
    LowPrecisionOperator,
    LowPrecisionPreconditioner,
    PrecisionDomain,
    PrecisionRegistry,
    PrecisionSpec,
    RegisteredPrecision,
    default_precision_registry,
    lowprecision,
    parse_precision,
    precision_names,
)
from repro.reliability.seeding import derive_fault_seed, derive_seed, fault_stream

__all__ = [
    # bit-level primitives
    "bits_of",
    "float_from_bits",
    "flip_bit_float64",
    "flip_bit_array",
    "flip_random_bit",
    "relative_perturbation",
    # events / campaigns
    "FaultEvent",
    "FaultRecord",
    "CampaignResult",
    "SdcCampaign",
    "classify_outcome",
    "OUTCOME_KINDS",
    # schedules
    "FaultSchedule",
    "DeterministicSchedule",
    "PoissonSchedule",
    "BernoulliPerCallSchedule",
    "NeverSchedule",
    # injectors
    "ArrayInjector",
    "TargetedInjector",
    "InjectionSession",
    "PerturbationInjector",
    "MessageCorruptor",
    # process failures
    "ProcessFailureModel",
    "ExponentialFailureModel",
    "WeibullFailureModel",
    "FailurePlan",
    "system_mtbf",
    # domains / SRP
    "ReliabilityDomain",
    "TrackedAllocation",
    "DomainOperator",
    "DomainPreconditioner",
    "unreliable",
    "reliable",
    "SelectiveReliabilityEnvironment",
    "UnreliableOperator",
    "ReliabilityCostModel",
    "tmr_execute",
    "TmrDisagreement",
    # declarative layer
    "FaultSpec",
    "compose",
    "FaultModel",
    "FaultCapabilityError",
    "NoFaults",
    "BitflipFaults",
    "PerturbationFaults",
    "MessageCorruptionFaults",
    "ProcessFaults",
    "BasisBitflipFaults",
    "CompositeFaults",
    "build_model",
    "FaultRegistry",
    "RegisteredFaultModel",
    "default_fault_registry",
    "fault_names",
    "resolve_faults",
    # precision (the fourth axis)
    "PrecisionSpec",
    "RegisteredPrecision",
    "PrecisionRegistry",
    "default_precision_registry",
    "precision_names",
    "parse_precision",
    "PrecisionDomain",
    "LowPrecisionOperator",
    "LowPrecisionPreconditioner",
    "lowprecision",
    # seeding
    "derive_seed",
    "derive_fault_seed",
    "fault_stream",
]
