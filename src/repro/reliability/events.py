"""Fault-event records and campaign results.

An injection campaign (many runs of a solver, each with one or more
injected faults) produces a :class:`CampaignResult` summarising per-run
:class:`FaultRecord` entries.  The experiment drivers turn these into
the detection/overhead tables recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["FaultEvent", "FaultRecord", "CampaignResult"]


@dataclass(frozen=True)
class FaultEvent:
    """A single injected fault.

    Attributes
    ----------
    kind:
        ``"bitflip"``, ``"value"`` (direct overwrite), or
        ``"process"`` (hard failure).
    target:
        Name of the corrupted object (e.g. ``"arnoldi_basis"``,
        ``"inner_solution"``, ``"rank"``).
    location:
        Element index, rank number, or other location information.
    bit:
        Flipped bit position for bit flips, else ``None``.
    time:
        Virtual time or iteration number at which the fault occurred.
    magnitude:
        Relative perturbation caused by the fault (``inf`` for
        non-finite corruption), when meaningful.
    """

    kind: str
    target: str
    location: Any = None
    bit: Optional[int] = None
    time: Optional[float] = None
    magnitude: Optional[float] = None


@dataclass
class FaultRecord:
    """The outcome of one faulty run.

    Attributes
    ----------
    events:
        The faults injected during the run.
    detected:
        Whether the resilience mechanism under test flagged the fault.
    detection_time:
        Iteration/virtual time at which detection happened (if any).
    outcome:
        One of the categories in :data:`repro.reliability.sdc.OUTCOME_KINDS`
        (``"benign"``, ``"detected"``, ``"corrected"``, ``"sdc"``,
        ``"crash"``).
    extra:
        Free-form per-run metrics (final residual, iterations, ...).
    """

    events: List[FaultEvent] = field(default_factory=list)
    detected: bool = False
    detection_time: Optional[float] = None
    outcome: str = "benign"
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Aggregate over many faulty runs.

    Provides the counting helpers used by experiment tables.
    """

    records: List[FaultRecord] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add(self, record: FaultRecord) -> None:
        """Append one run's record."""
        self.records.append(record)

    @property
    def n_runs(self) -> int:
        """Number of runs in the campaign."""
        return len(self.records)

    def count_outcome(self, outcome: str) -> int:
        """Number of runs with the given outcome label."""
        return sum(1 for r in self.records if r.outcome == outcome)

    def rate_outcome(self, outcome: str) -> float:
        """Fraction of runs with the given outcome label."""
        if not self.records:
            return 0.0
        return self.count_outcome(outcome) / len(self.records)

    @property
    def detection_rate(self) -> float:
        """Fraction of runs in which the fault was detected."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.detected) / len(self.records)

    def mean_extra(self, key: str, default: float = 0.0) -> float:
        """Mean of a per-run ``extra`` metric over runs that define it."""
        values = [r.extra[key] for r in self.records if key in r.extra]
        if not values:
            return default
        return float(sum(values)) / len(values)

    def outcomes(self) -> Dict[str, int]:
        """Histogram of outcome labels."""
        hist: Dict[str, int] = {}
        for record in self.records:
            hist[record.outcome] = hist.get(record.outcome, 0) + 1
        return hist
