"""Array-level fault injectors.

The injectors tie together a :class:`~repro.reliability.schedule.FaultSchedule`
(when), a target selection policy (where) and a corruption primitive
(what) and record every injected fault in an
:class:`~repro.utils.logging.EventLog` plus a list of
:class:`~repro.reliability.events.FaultEvent` records.

Two injectors are provided:

* :class:`ArrayInjector` -- corrupt a random element of whatever array
  it is handed, whenever the schedule says so.  This is what the
  unreliable compute regions of :mod:`repro.reliability` use.
* :class:`TargetedInjector` -- corrupt a specific element/bit at a
  specific opportunity, used by the controlled sweeps of experiment E1
  where we need to know exactly which bit was flipped.

Both operate **only** on data registered as unreliable when used
through the SRP layer; used directly they corrupt whatever they are
given (the caller is the one declaring it unreliable).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.reliability.bitflip import (
    flip_bit_array,
    flip_random_bit,
    max_bit_index,
    relative_perturbation,
)
from repro.reliability.events import FaultEvent
from repro.reliability.schedule import FaultSchedule, NeverSchedule
from repro.utils.logging import EventLog
from repro.utils.rng import as_generator

__all__ = ["ArrayInjector", "TargetedInjector", "InjectionSession"]


class InjectionSession:
    """Book-keeping shared by injectors during one run.

    Collects the :class:`FaultEvent` records and exposes counters that
    the experiment drivers read after the run.
    """

    def __init__(self, log: Optional[EventLog] = None):
        self.log = log if log is not None else EventLog()
        self.events: List[FaultEvent] = []

    def record(self, event: FaultEvent) -> None:
        """Store a fault event and mirror it into the event log."""
        self.events.append(event)
        self.log.record(
            "fault_injected",
            time=event.time,
            target=event.target,
            fault_kind=event.kind,
            bit=event.bit,
            location=event.location,
            magnitude=event.magnitude,
        )

    @property
    def n_injected(self) -> int:
        """Total number of injected faults in this session."""
        return len(self.events)

    def clear(self) -> None:
        """Forget all recorded events (does not clear the shared log)."""
        self.events.clear()


class ArrayInjector:
    """Schedule-driven random bit-flip injector for float arrays.

    Parameters
    ----------
    schedule:
        Decides at each opportunity how many faults to inject.
        Defaults to :class:`NeverSchedule` (fault-free).
    rng:
        Seed or generator for victim-element and bit selection.
    bit_range:
        Inclusive range of bit positions to flip; ``None`` means the
        full width of the target dtype (0..63 for float64, 0..31 for
        float32).  An explicit range is clamped to the dtype width when
        a float32 array comes through, so float64-centric specs like
        ``bits=52..62`` keep hitting the high (large-error) bits
        instead of erroring.
    target:
        Label attached to the fault events (useful when one injector
        guards one named data structure).
    session:
        Shared :class:`InjectionSession`; a private one is created if
        omitted.
    """

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        rng: Union[None, int, np.random.Generator] = None,
        *,
        bit_range: Optional[Tuple[int, int]] = None,
        target: str = "array",
        session: Optional[InjectionSession] = None,
    ):
        self.schedule = schedule if schedule is not None else NeverSchedule()
        self._rng = as_generator(rng)
        self.bit_range = bit_range
        self.target = target
        self.session = session if session is not None else InjectionSession()

    def maybe_inject(self, array: np.ndarray, now: float = 0.0) -> np.ndarray:
        """Possibly corrupt ``array`` in place, according to the schedule.

        Returns the (possibly corrupted) array for call-chaining.  The
        array must be float64 or float32 and writable; zero-size arrays
        are passed through untouched.  The float64 draw sequence is the
        historical one (victim index, then bit), so existing fault
        streams replay bit for bit.
        """
        arr = np.asarray(array)
        n_faults = self.schedule.due(now)
        if n_faults == 0 or arr.size == 0:
            return arr
        max_bit = max_bit_index(arr.dtype)
        for _ in range(n_faults):
            before_index = None
            flat = arr.reshape(-1)
            # Choose the victim first so we can compute the perturbation.
            flat_index = int(self._rng.integers(0, arr.size))
            low, high = (
                self.bit_range if self.bit_range is not None else (0, max_bit)
            )
            low, high = min(int(low), max_bit), min(int(high), max_bit)
            bit = int(self._rng.integers(low, high + 1))
            original = float(flat[flat_index])
            flip_bit_array(arr, flat_index, bit, inplace=True)
            corrupted = float(arr.reshape(-1)[flat_index])
            event = FaultEvent(
                kind="bitflip",
                target=self.target,
                location=flat_index if before_index is None else before_index,
                bit=bit,
                time=now,
                magnitude=relative_perturbation(original, corrupted),
            )
            self.session.record(event)
        return arr

    @property
    def n_injected(self) -> int:
        """Number of faults injected so far through this injector."""
        return self.session.n_injected

    def reset(self) -> None:
        """Reset the schedule and forget session events."""
        self.schedule.reset()
        self.session.clear()


class TargetedInjector:
    """Inject a precisely specified fault at a specified opportunity.

    Parameters
    ----------
    at:
        Opportunity coordinate (iteration number or virtual time) at
        which to inject.  The fault fires on the first call whose
        ``now`` is greater than or equal to ``at``.
    index:
        Flat index of the element to corrupt; ``None`` selects a random
        element.
    bit:
        Bit to flip; ``None`` selects a random bit.
    value:
        If given, the element is overwritten with ``value`` instead of
        flipping a bit (kind ``"value"``).
    """

    def __init__(
        self,
        at: float,
        *,
        index: Optional[int] = None,
        bit: Optional[int] = None,
        value: Optional[float] = None,
        rng: Union[None, int, np.random.Generator] = None,
        target: str = "array",
        session: Optional[InjectionSession] = None,
    ):
        self.at = float(at)
        self.index = index
        self.bit = bit
        self.value = value
        self._rng = as_generator(rng)
        self.target = target
        self.session = session if session is not None else InjectionSession()
        self._fired = False

    @property
    def fired(self) -> bool:
        """Whether the fault has already been injected."""
        return self._fired

    def maybe_inject(self, array: np.ndarray, now: float = 0.0) -> np.ndarray:
        """Inject the configured fault if ``now`` has reached ``at``."""
        if self._fired or now < self.at:
            return array
        arr = np.asarray(array)
        if arr.size == 0:
            return arr
        max_bit = max_bit_index(arr.dtype)  # TypeError for non-float data
        flat = arr.reshape(-1)
        index = self.index if self.index is not None else int(self._rng.integers(0, arr.size))
        if not 0 <= index < arr.size:
            raise IndexError(f"index {index} out of bounds for size {arr.size}")
        original = float(flat[index])
        if self.value is not None:
            flat[index] = self.value
            kind = "value"
            bit = None
            corrupted = float(self.value)
        else:
            bit = self.bit if self.bit is not None else int(self._rng.integers(0, max_bit + 1))
            flip_bit_array(arr, index, bit, inplace=True)
            corrupted = float(arr.reshape(-1)[index])
            kind = "bitflip"
        self._fired = True
        event = FaultEvent(
            kind=kind,
            target=self.target,
            location=index,
            bit=bit,
            time=now,
            magnitude=relative_perturbation(original, corrupted),
        )
        self.session.record(event)
        return arr

    def reset(self) -> None:
        """Allow the injector to fire again (e.g. for a new run)."""
        self._fired = False
        self.session.clear()
