"""Hard-fault (process-failure) models.

The LFLR and checkpoint/restart experiments need to know *when which
rank dies*.  Failure interarrival times follow the standard models used
in the resilience literature:

* exponential interarrivals (memoryless, parameterized by a per-node
  MTBF), the model underlying the Young/Daly checkpoint-interval
  formulas;
* Weibull interarrivals, which empirically fit HPC failure logs better
  (infant-mortality-shaped hazard for shape < 1).

A :class:`FailurePlan` materializes a model into a concrete, replayable
list of ``(time, rank)`` failures for a run of given length and rank
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_non_negative, check_integer

__all__ = [
    "ProcessFailureModel",
    "ExponentialFailureModel",
    "WeibullFailureModel",
    "FailurePlan",
    "system_mtbf",
]


def system_mtbf(node_mtbf: float, n_nodes: int) -> float:
    """Mean time between failures of an ``n_nodes`` system.

    With independent exponential node failures the system failure rate
    is the sum of node rates, so the system MTBF is the node MTBF
    divided by the node count.  This is the scaling that makes global
    checkpoint/restart untenable at extreme scale (paper §I, §II-C).
    """
    check_positive(node_mtbf, "node_mtbf")
    check_integer(n_nodes, "n_nodes")
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    return node_mtbf / n_nodes


class ProcessFailureModel:
    """Base class: samples failure interarrival times for a single node."""

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        """Sample one interarrival time (seconds)."""
        raise NotImplementedError

    def node_mtbf(self) -> float:
        """Mean of the interarrival distribution."""
        raise NotImplementedError


class ExponentialFailureModel(ProcessFailureModel):
    """Memoryless failures with mean time between failures ``mtbf``."""

    def __init__(self, mtbf: float):
        self.mtbf = check_positive(mtbf, "mtbf")

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mtbf))

    def node_mtbf(self) -> float:
        return self.mtbf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialFailureModel(mtbf={self.mtbf})"


class WeibullFailureModel(ProcessFailureModel):
    """Weibull-distributed failure interarrivals.

    Parameters
    ----------
    scale:
        Weibull scale parameter (seconds).
    shape:
        Weibull shape parameter; ``shape < 1`` gives the decreasing
        hazard rate observed in production failure logs.
    """

    def __init__(self, scale: float, shape: float = 0.7):
        self.scale = check_positive(scale, "scale")
        self.shape = check_positive(shape, "shape")

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def node_mtbf(self) -> float:
        # Mean of Weibull(scale, shape) = scale * Gamma(1 + 1/shape)
        from math import gamma

        return self.scale * gamma(1.0 + 1.0 / self.shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeibullFailureModel(scale={self.scale}, shape={self.shape})"


@dataclass(frozen=True)
class RankFailure:
    """A single planned rank failure."""

    time: float
    rank: int


class FailurePlan:
    """A concrete, replayable list of rank failures.

    Parameters
    ----------
    failures:
        Sequence of ``(time, rank)`` pairs; it is sorted by time on
        construction.
    """

    def __init__(self, failures: Sequence[Tuple[float, int]]):
        items = [RankFailure(float(t), int(r)) for t, r in failures]
        for item in items:
            check_non_negative(item.time, "failure time")
            if item.rank < 0:
                raise ValueError("rank must be non-negative")
        self._failures: List[RankFailure] = sorted(items, key=lambda f: f.time)

    @classmethod
    def sample(
        cls,
        model: ProcessFailureModel,
        n_ranks: int,
        horizon: float,
        rng: Union[None, int, np.random.Generator] = None,
        *,
        max_failures: Optional[int] = None,
    ) -> "FailurePlan":
        """Sample a plan: each rank fails independently per the model.

        Only failures within ``[0, horizon]`` are kept.  A rank can
        fail more than once in the horizon (modelling its replacement
        failing again), unless the caller trims with ``max_failures``.
        """
        check_integer(n_ranks, "n_ranks")
        check_non_negative(horizon, "horizon")
        gen = as_generator(rng)
        failures: List[Tuple[float, int]] = []
        for rank in range(n_ranks):
            t = 0.0
            while True:
                t += model.sample_interarrival(gen)
                if t > horizon:
                    break
                failures.append((t, rank))
        failures.sort(key=lambda f: f[0])
        if max_failures is not None:
            failures = failures[:max_failures]
        return cls(failures)

    @classmethod
    def single(cls, time: float, rank: int) -> "FailurePlan":
        """Plan with exactly one failure (the common test case)."""
        return cls([(time, rank)])

    @classmethod
    def none(cls) -> "FailurePlan":
        """An empty plan (fault-free control)."""
        return cls([])

    @property
    def failures(self) -> List[RankFailure]:
        """All planned failures, sorted by time."""
        return list(self._failures)

    def failures_for_rank(self, rank: int) -> List[RankFailure]:
        """Planned failures of one rank."""
        return [f for f in self._failures if f.rank == rank]

    def first_failure_time(self, rank: int) -> Optional[float]:
        """Time of the first planned failure of ``rank``, or ``None``."""
        for failure in self._failures:
            if failure.rank == rank:
                return failure.time
        return None

    def failures_in(self, start: float, end: float) -> List[RankFailure]:
        """Failures with ``start < time <= end`` (interval semantics of a step)."""
        return [f for f in self._failures if start < f.time <= end]

    def __len__(self) -> int:
        return len(self._failures)

    def __iter__(self):
        return iter(self._failures)
