"""Silent-data-corruption campaign helpers.

Experiment E1 (SDC detection in GMRES) and E6 (FT-GMRES) run the same
solver many times, each run with one injected fault, and classify the
outcome.  :class:`SdcCampaign` drives such campaigns and
:func:`classify_outcome` implements the standard outcome taxonomy used
by the SDC literature:

``benign``
    the fault changed nothing observable: the solver converged to the
    correct answer without any resilience mechanism firing;
``detected``
    a skeptical check flagged the fault (and the configured policy
    handled it) -- the run still produced a correct answer;
``corrected``
    the fault was detected *and* transparently repaired (e.g. ABFT
    single-error correction);
``sdc``
    the solver reported success but the answer is wrong -- the
    dangerous case the paper warns about;
``crash``
    the solver failed to converge or produced non-finite output.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.reliability.events import CampaignResult, FaultRecord
from repro.utils.validation import check_positive

__all__ = ["OUTCOME_KINDS", "classify_outcome", "SdcCampaign"]

#: Canonical outcome labels, in "severity" order.
OUTCOME_KINDS = ("benign", "detected", "corrected", "sdc", "crash")


def classify_outcome(
    *,
    converged: bool,
    error_norm: float,
    tolerance: float,
    detected: bool,
    corrected: bool = False,
) -> str:
    """Classify a faulty run.

    Parameters
    ----------
    converged:
        Whether the solver claims success.
    error_norm:
        A trusted measure of final answer quality (e.g. true residual
        or error against a fault-free reference).
    tolerance:
        Threshold below which the answer counts as correct.
    detected:
        Whether a resilience check fired during the run.
    corrected:
        Whether the fault was transparently repaired.
    """
    check_positive(tolerance, "tolerance")
    correct = bool(converged) and np.isfinite(error_norm) and error_norm <= tolerance
    if corrected:
        return "corrected"
    if detected:
        return "detected" if correct else "crash"
    if correct:
        return "benign"
    if bool(converged) and (not np.isfinite(error_norm) or error_norm > tolerance):
        return "sdc"
    return "crash"


class SdcCampaign:
    """Run a single-fault experiment many times and aggregate outcomes.

    Parameters
    ----------
    run_once:
        Callable ``run_once(trial_index) -> FaultRecord`` performing one
        faulty run.  The campaign does not impose how the fault is
        injected; the callable owns that.
    n_trials:
        Number of runs.
    """

    def __init__(self, run_once: Callable[[int], FaultRecord], n_trials: int):
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        self._run_once = run_once
        self.n_trials = int(n_trials)

    def run(self, metadata: Optional[Dict] = None) -> CampaignResult:
        """Execute all trials and return the aggregated result."""
        result = CampaignResult(metadata=dict(metadata or {}))
        for trial in range(self.n_trials):
            record = self._run_once(trial)
            if not isinstance(record, FaultRecord):
                raise TypeError("run_once must return a FaultRecord")
            if record.outcome not in OUTCOME_KINDS:
                raise ValueError(
                    f"unknown outcome {record.outcome!r}; expected one of {OUTCOME_KINDS}"
                )
            result.add(record)
        return result
