"""Unified RNG seed derivation for fault injection.

Before the reliability layer existed, fault randomness was derived in
two unrelated ways: the campaign runner hashed ``(base_seed,
scenario_key)`` into per-scenario seeds, while fault schedules and
injectors spun their own streams from whatever integer the driver
happened to pass -- so the same scenario key could draw *different*
fault sequences depending on the entry point (driver called directly
vs. through a campaign).

This module is now the single source of both derivations:

* :func:`derive_seed` -- per-scenario seed from a base seed and a
  stable key (the campaign runner re-exports this unchanged); and
* :func:`fault_stream` -- a named fault stream from a scenario seed,
  namespaced under ``"faults/"`` exactly like the drivers' own
  ``RngFactory(seed).spawn("faults/<name>")`` calls, so a fault model
  built from ``(seed, name)`` draws the same sequence no matter which
  layer built it.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

from repro.utils.rng import RngFactory

__all__ = ["derive_seed", "fault_stream", "derive_fault_seed"]


def derive_seed(base_seed: int, scenario_key: str) -> int:
    """Deterministic per-scenario seed from the campaign base seed.

    Stable across processes and Python versions (SHA-256, no
    ``hash()``), and different for scenarios with different keys, so
    sweeps that vary only non-seed parameters still draw independent
    randomness per scenario.
    """
    digest = hashlib.sha256(f"{base_seed}:{scenario_key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def fault_stream(
    seed: Optional[int], name: str = "default"
) -> np.random.Generator:
    """The canonical fault stream for ``(seed, name)``.

    Namespaced under ``"faults/"`` in the :class:`RngFactory` spawn
    space, matching the convention the experiment drivers already use,
    so reliability models and hand-written drivers that agree on the
    name draw identical fault sequences.
    """
    return RngFactory(seed).spawn(f"faults/{name}")


def derive_fault_seed(seed: Optional[int], name: str = "default") -> int:
    """A 31-bit integer seed drawn from the canonical fault stream.

    This is the idiom experiment E8 uses to hand each solver its own
    independent fault seed (``faults/<solver>``); centralizing it keeps
    direct driver calls and campaign runs on identical streams.
    """
    return int(fault_stream(seed, name).integers(0, 2**31 - 1))
