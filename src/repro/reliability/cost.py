"""Reliability cost model.

Making storage or computation "more reliable than the bulk reliability
of the underlying system" costs something: ECC-protected or replicated
memory, instruction replication, TMR.  The SRP argument only needs a
first-order model of that cost: a multiplier on reliable bytes and a
multiplier on reliable flops.  With those two numbers the model can
answer the question the paper poses implicitly -- *how much cheaper is
an execution that keeps most data and work unreliable* -- which is what
:meth:`SelectiveReliabilityEnvironment.cost_summary` and experiment E6
report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ReliabilityCostModel"]


@dataclass
class ReliabilityCostModel:
    """First-order cost multipliers for reliable storage and compute.

    Attributes
    ----------
    reliable_compute_factor:
        Cost multiplier of a reliable flop relative to an unreliable
        one.  TMR corresponds to ~3 (plus voting); instruction
        duplication ~2; hardened-but-slower cores somewhere in between.
    reliable_storage_factor:
        Cost multiplier of a reliably stored byte (e.g. ECC+chipkill or
        software replication) relative to an unreliable byte.
    unreliable_compute_cost:
        Baseline cost per unreliable flop (arbitrary units; 1.0 by
        default so returned costs are in "unreliable flop equivalents").
    """

    reliable_compute_factor: float = 3.0
    reliable_storage_factor: float = 2.0
    unreliable_compute_cost: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.reliable_compute_factor, "reliable_compute_factor")
        check_positive(self.reliable_storage_factor, "reliable_storage_factor")
        check_positive(self.unreliable_compute_cost, "unreliable_compute_cost")

    def execution_cost(self, reliable_flops: float, unreliable_flops: float) -> float:
        """Total compute cost of a run split between the two domains."""
        check_non_negative(reliable_flops, "reliable_flops")
        check_non_negative(unreliable_flops, "unreliable_flops")
        return self.unreliable_compute_cost * (
            unreliable_flops + self.reliable_compute_factor * reliable_flops
        )

    def storage_cost(self, reliable_bytes: float, unreliable_bytes: float) -> float:
        """Total storage cost of data split between the two domains."""
        check_non_negative(reliable_bytes, "reliable_bytes")
        check_non_negative(unreliable_bytes, "unreliable_bytes")
        return unreliable_bytes + self.reliable_storage_factor * reliable_bytes

    def speedup_vs_all_reliable(
        self, reliable_flops: float, unreliable_flops: float
    ) -> float:
        """How much cheaper selective reliability is than all-reliable."""
        selective = self.execution_cost(reliable_flops, unreliable_flops)
        everything = self.execution_cost(reliable_flops + unreliable_flops, 0.0)
        if selective == 0.0:
            return 1.0
        return everything / selective
