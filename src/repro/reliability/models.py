"""Fault models: the runtime side of declarative fault specs.

A :class:`FaultModel` turns a :class:`~repro.reliability.spec.FaultSpec`
into the concrete machinery the rest of the toolkit consumes --
schedules, injectors, selective-reliability environments, failure
plans, message corruptors and engine iteration hooks -- through one
capability surface, so drivers never construct injectors by hand:

===============  ====================================================
capability        consumed by
===============  ====================================================
``schedule``      anything that needs a *when* (injectors, domains)
``injector``      :class:`~repro.reliability.domain.ReliabilityDomain`
``environment``   SRP solvers / operator-wrapping experiments (E6, E8)
``failure_plan``  :mod:`repro.simmpi`, LFLR/CPR experiments (E4, E7)
``message_corruptor``  :class:`repro.simmpi.comm.Comm` send paths
``iteration_hook``     the solver engine's resilience-policy surface
===============  ====================================================

Every capability takes either an explicit ``rng`` (a shared generator,
for legacy-parity wiring) or a ``seed``/``name`` pair resolved through
:func:`repro.reliability.seeding.fault_stream`, so the same scenario
seed draws the same fault sequence at every entry point.

Models a given kind does not support raise
:class:`FaultCapabilityError` -- e.g. asking a process-failure model
for an array injector is a programming error, not an empty schedule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.reliability.bitflip import (
    flip_bit_array,
    flip_bit_float64,
    flip_random_bit,
    relative_perturbation,
)
from repro.reliability.events import FaultEvent
from repro.reliability.injector import ArrayInjector, InjectionSession
from repro.reliability.process import (
    ExponentialFailureModel,
    FailurePlan,
    WeibullFailureModel,
)
from repro.reliability.schedule import (
    BernoulliPerCallSchedule,
    DeterministicSchedule,
    FaultSchedule,
    NeverSchedule,
    PoissonSchedule,
)
from repro.reliability.seeding import fault_stream
from repro.reliability.spec import COMPOSE_KIND, FaultSpec
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = [
    "FaultModel",
    "FaultCapabilityError",
    "NoFaults",
    "BitflipFaults",
    "PerturbationFaults",
    "MessageCorruptionFaults",
    "ProcessFaults",
    "BasisBitflipFaults",
    "CompositeFaults",
    "PerturbationInjector",
    "MessageCorruptor",
    "MODEL_KINDS",
    "build_model",
]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


class FaultCapabilityError(TypeError):
    """A fault model was asked for a capability its kind does not have."""


def _resolve_rng(
    rng: Union[None, int, np.random.Generator],
    seed: Optional[int],
    name: str,
) -> np.random.Generator:
    """Shared-generator override, or the canonical named fault stream."""
    if rng is not None:
        return as_generator(rng)
    return fault_stream(seed, name)


class FaultModel:
    """Base fault model: a validated spec plus the capability surface."""

    kind = ""

    def __init__(self, spec: FaultSpec):
        if spec.kind != self.kind:
            raise ValueError(
                f"{type(self).__name__} cannot model kind {spec.kind!r}"
            )
        self.spec = spec
        self._validate()

    def _validate(self) -> None:
        """Subclass hook: raise on malformed parameters."""

    # -- generic surface ----------------------------------------------
    @property
    def is_null(self) -> bool:
        """Whether this model never injects anything."""
        return False

    @property
    def probability(self) -> float:
        """Per-opportunity fault probability (0.0 when not applicable)."""
        return 0.0

    @property
    def bits(self) -> Optional[Tuple[int, int]]:
        """Inclusive bit-position range for bit-level models, else None."""
        return None

    def components(self) -> List["FaultModel"]:
        """The leaf models (just ``self`` for non-composite kinds)."""
        return [self]

    def component(self, kind: str) -> Optional["FaultModel"]:
        """The first leaf component of the given kind, or ``None``."""
        for model in self.components():
            if model.kind == kind:
                return model
        return None

    def soft_component(self) -> Optional["FaultModel"]:
        """The first component able to corrupt in-memory data, or ``None``.

        The one definition of "soft fault" the experiment drivers share:
        a shared fault axis may mix soft components (bit flips, value
        perturbations) with hard ones (process failures, message
        corruption); drivers that corrupt operators or kernel results
        consume exactly this component and run clean when there is none.
        """
        if self.is_null:
            return None
        for kind in ("bitflip", "perturb"):
            component = self.component(kind)
            if component is not None and not component.is_null:
                return component
        return None

    def with_params(self, **overrides) -> "FaultModel":
        """A new model of the same kind with parameter overrides.

        ``None`` overrides are ignored, so optional driver arguments
        can be forwarded verbatim.
        """
        return build_model(self.spec.with_params(**overrides))

    def describe(self) -> str:
        """The compact spec-string form (stable, parseable)."""
        return self.spec.to_string()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.describe()!r})"

    # -- capabilities (unsupported by default) ------------------------
    def _unsupported(self, capability: str) -> FaultCapabilityError:
        return FaultCapabilityError(
            f"fault model kind {self.kind!r} has no {capability!r} capability"
        )

    def schedule(self, rng=None, *, seed=None, name="schedule") -> FaultSchedule:
        raise self._unsupported("schedule")

    def injector(self, rng=None, *, seed=None, name="injector",
                 target=None, session=None):
        raise self._unsupported("injector")

    def environment(self, *, seed=None, cost_model=None, log=None):
        raise self._unsupported("environment")

    def failure_plan(self, *, n_ranks=None, horizon=None, seed=None) -> FailurePlan:
        raise self._unsupported("failure_plan")

    def message_corruptor(self, rng=None, *, seed=None, name="messages"):
        raise self._unsupported("message_corruptor")

    def iteration_hook(self, rng=None, *, seed=None, name="basis", at=None):
        raise self._unsupported("iteration_hook")


class NoFaults(FaultModel):
    """The fault-free control (kind ``"none"``)."""

    kind = "none"

    @property
    def is_null(self) -> bool:
        return True

    def schedule(self, rng=None, *, seed=None, name="schedule") -> FaultSchedule:
        return NeverSchedule()

    def injector(self, rng=None, *, seed=None, name="injector",
                 target=None, session=None) -> ArrayInjector:
        return ArrayInjector(
            schedule=NeverSchedule(),
            rng=_resolve_rng(rng, seed, name),
            target=target or "array",
            session=session,
        )

    def failure_plan(self, *, n_ranks=None, horizon=None, seed=None) -> FailurePlan:
        return FailurePlan.none()


class _ScheduledFaults(FaultModel):
    """Shared when-axis handling: ``p`` | ``rate`` | ``times``."""

    def _validate(self) -> None:
        given = [k for k in ("p", "rate", "times") if k in self.spec.params]
        if len(given) > 1:
            raise ValueError(
                f"fault spec {self.describe()!r} mixes {given}; give exactly "
                f"one of p (Bernoulli), rate (Poisson) or times (deterministic)"
            )
        if "p" in self.spec.params:
            check_probability(float(self.spec.params["p"]), "p")

    @property
    def probability(self) -> float:
        return float(self.spec.get("p", 0.0))

    def schedule(self, rng=None, *, seed=None, name="schedule") -> FaultSchedule:
        params = self.spec.params
        if "times" in params:
            times = params["times"]
            if not isinstance(times, tuple):
                times = (times,)
            return DeterministicSchedule(times)
        if "rate" in params:
            return PoissonSchedule(
                float(params["rate"]),
                rng=_resolve_rng(rng, seed, name),
                horizon=params.get("horizon"),
            )
        if "p" in params:
            return BernoulliPerCallSchedule(
                float(params["p"]),
                rng=_resolve_rng(rng, seed, name),
                max_faults=params.get("max_faults"),
            )
        return NeverSchedule()

    @property
    def is_null(self) -> bool:
        params = self.spec.params
        if "times" in params:
            return False
        if "rate" in params:
            return float(params["rate"]) == 0.0
        return float(params.get("p", 0.0)) == 0.0


class BitflipFaults(_ScheduledFaults):
    """IEEE-754 bit flips in arrays passing through a domain.

    Parameters: one of ``p``/``rate``/``times`` (when), plus ``bits``
    (inclusive bit-position range, default all 64), ``max_faults``
    (Bernoulli cap) and ``target`` (event label).
    """

    kind = "bitflip"

    def _validate(self) -> None:
        super()._validate()
        bits = self.spec.get("bits")
        if bits is not None:
            lo, hi = bits
            if not (0 <= int(lo) <= int(hi) <= 63):
                raise ValueError(f"invalid bits range {bits!r}")

    @property
    def bits(self) -> Optional[Tuple[int, int]]:
        bits = self.spec.get("bits")
        return (int(bits[0]), int(bits[1])) if bits is not None else None

    def injector(self, rng=None, *, seed=None, name="injector",
                 target=None, session=None) -> ArrayInjector:
        # One shared generator drives schedule and victim selection, in
        # that construction order -- the exact legacy wiring of the E6
        # all-unreliable baseline, so spec-driven runs replay old draws.
        gen = _resolve_rng(rng, seed, name)
        return ArrayInjector(
            schedule=self.schedule(gen),
            rng=gen,
            bit_range=self.bits,
            target=target or self.spec.get("target", "array"),
            session=session,
        )

    def environment(self, *, seed=None, cost_model=None, log=None):
        from repro.reliability.environment import SelectiveReliabilityEnvironment
        from repro.utils.logging import EventLog

        if set(self.spec.params) <= {"p", "bits"}:
            # Pure Bernoulli: defer entirely to the environment's own
            # construction -- bitwise-identical to the pre-registry
            # wiring.
            return SelectiveReliabilityEnvironment(
                fault_probability=self.probability, seed=seed,
                bit_range=self.bits, cost_model=cost_model, log=log,
            )
        # Any further knobs (rate/times schedules, max_faults caps,
        # target labels) must reach the injector, so build it here.
        log = log if log is not None else EventLog()
        gen = as_generator(seed)
        injector = self.injector(
            gen,
            target=self.spec.get("target", "srp_unreliable"),
            session=InjectionSession(log),
        )
        return SelectiveReliabilityEnvironment(
            injector=injector, cost_model=cost_model, log=log,
        )


class PerturbationInjector:
    """Schedule-driven value corruption (overwrite or scale).

    The non-bit-flip SDC primitive: when the schedule fires, one random
    element of the array is either overwritten with ``value`` or
    multiplied by ``scale``.  Interface-compatible with
    :class:`~repro.reliability.injector.ArrayInjector` so it slots into
    domains and environments unchanged.
    """

    def __init__(self, schedule, rng, *, value=None, scale=None,
                 target="array", session=None):
        if (value is None) == (scale is None):
            raise ValueError("give exactly one of value= or scale=")
        self.schedule = schedule
        self._rng = as_generator(rng)
        self.value = value
        self.scale = scale
        self.target = target
        self.session = session if session is not None else InjectionSession()

    def maybe_inject(self, array: np.ndarray, now: float = 0.0) -> np.ndarray:
        arr = np.asarray(array)
        n_faults = self.schedule.due(now)
        if n_faults == 0 or arr.size == 0:
            return arr
        for _ in range(n_faults):
            index = int(self._rng.integers(0, arr.size))
            # arr.flat assigns through any memory layout (reshape(-1)
            # would corrupt a throw-away copy of non-contiguous views).
            original = float(arr.flat[index])
            corrupted = (
                float(self.value) if self.value is not None
                else original * float(self.scale)
            )
            arr.flat[index] = corrupted
            self.session.record(FaultEvent(
                kind="value", target=self.target, location=index, bit=None,
                time=now, magnitude=relative_perturbation(original, corrupted),
            ))
        return arr

    @property
    def n_injected(self) -> int:
        return self.session.n_injected

    def reset(self) -> None:
        self.schedule.reset()
        self.session.clear()


class PerturbationFaults(_ScheduledFaults):
    """SDC value perturbation (kind ``"perturb"``).

    Parameters: one of ``p``/``rate``/``times``, plus exactly one of
    ``value`` (overwrite the victim element) or ``scale`` (multiply
    it), and ``target``.
    """

    kind = "perturb"

    def _validate(self) -> None:
        super()._validate()
        has_value = "value" in self.spec.params
        has_scale = "scale" in self.spec.params
        if has_value == has_scale:
            raise ValueError(
                f"perturb spec {self.describe()!r} needs exactly one of "
                f"value= or scale="
            )

    def injector(self, rng=None, *, seed=None, name="injector",
                 target=None, session=None) -> PerturbationInjector:
        gen = _resolve_rng(rng, seed, name)
        return PerturbationInjector(
            self.schedule(gen), gen,
            value=self.spec.get("value"), scale=self.spec.get("scale"),
            target=target or self.spec.get("target", "array"),
            session=session,
        )

    def environment(self, *, seed=None, cost_model=None, log=None):
        from repro.reliability.environment import SelectiveReliabilityEnvironment

        from repro.utils.logging import EventLog

        log = log if log is not None else EventLog()
        injector = self.injector(seed=seed, session=InjectionSession(log))
        return SelectiveReliabilityEnvironment(
            injector=injector, cost_model=cost_model, log=log,
        )


class MessageCorruptor:
    """Per-send Bernoulli bit corruption of message payloads.

    Applied by :class:`repro.simmpi.comm.Comm` to the already-copied
    payload, so sender-side state is never corrupted -- this models a
    faulty interconnect, not faulty memory.  When a send is hit, one
    uniformly chosen corruptible leaf of the payload gets a single bit
    flip: float64 ndarrays (corrupted in place, including inside
    containers), bare Python floats, and floats inside dicts/lists
    (rewritten in the copied container).  Floats inside tuples are
    skipped (tuples are immutable); non-float payloads pass through.
    """

    def __init__(self, probability: float, rng, *, bits=None):
        self.probability = check_probability(probability, "probability")
        self._rng = as_generator(rng)
        self.bits = bits
        self.n_corrupted = 0

    def _collect_leaves(self, obj, setter, leaves) -> None:
        """Gather (victim, write-back) pairs: float64 arrays are
        corrupted in place (no write-back); floats need their
        container's setter (``None`` only for a bare float payload,
        which the caller handles via the return value)."""
        if isinstance(obj, np.ndarray):
            if obj.dtype == np.float64 and obj.size > 0:
                leaves.append((obj, None))
        elif isinstance(obj, bool):
            pass
        elif isinstance(obj, float):
            leaves.append((obj, setter))
        elif isinstance(obj, dict):
            for key in obj:
                self._collect_leaves(
                    obj[key], lambda v, _o=obj, _k=key: _o.__setitem__(_k, v), leaves
                )
        elif isinstance(obj, list):
            for index, item in enumerate(obj):
                self._collect_leaves(
                    item, lambda v, _o=obj, _i=index: _o.__setitem__(_i, v), leaves
                )
        elif isinstance(obj, tuple):
            # Tuples are immutable: only their in-place-corruptible
            # (array/container) members are reachable.
            for item in obj:
                if isinstance(item, (np.ndarray, dict, list, tuple)):
                    self._collect_leaves(item, None, leaves)

    def __call__(self, payload, dest: int = -1, tag: int = 0):
        if self.probability <= 0.0 or float(self._rng.random()) >= self.probability:
            return payload
        leaves: list = []
        self._collect_leaves(payload, None, leaves)
        if not leaves:
            return payload
        victim, setter = leaves[int(self._rng.integers(0, len(leaves)))]
        if isinstance(victim, np.ndarray):
            flip_random_bit(victim, self._rng, bit_range=self.bits, inplace=True)
        else:
            low, high = self.bits if self.bits is not None else (0, 63)
            corrupted = flip_bit_float64(victim, int(self._rng.integers(low, high + 1)))
            if setter is not None:
                setter(corrupted)
            else:
                payload = corrupted
        self.n_corrupted += 1
        return payload


class MessageCorruptionFaults(_ScheduledFaults):
    """Message corruption on the simulated interconnect (``"msg_corrupt"``).

    Parameters: ``p`` (per-send corruption probability) and ``bits``.
    """

    kind = "msg_corrupt"

    def _validate(self) -> None:
        super()._validate()
        if "rate" in self.spec.params or "times" in self.spec.params:
            raise ValueError(
                "msg_corrupt supports only per-send probability p= "
                "(sends have no global time axis)"
            )

    @property
    def bits(self) -> Optional[Tuple[int, int]]:
        bits = self.spec.get("bits")
        return (int(bits[0]), int(bits[1])) if bits is not None else None

    def message_corruptor(self, rng=None, *, seed=None, name="messages"):
        return MessageCorruptor(
            self.probability, _resolve_rng(rng, seed, name), bits=self.bits
        )


class ProcessFaults(FaultModel):
    """Hard process failures (kind ``"proc_fail"``).

    Parameters: either explicit ``times``/``ranks`` pairs, or a
    sampled plan via ``mtbf`` (seconds) or ``mtbf_years`` with
    ``model`` = ``exponential`` (default) or ``weibull`` (plus
    ``shape``), bounded by ``horizon`` and ``max_failures``.  A single
    ``rank`` parameter marks the victim rank for experiments that kill
    exactly one block (e.g. E5).
    """

    kind = "proc_fail"

    def _validate(self) -> None:
        params = self.spec.params
        if "times" in params and not ("ranks" in params or "rank" in params):
            raise ValueError("proc_fail with times= also needs ranks= (or rank=)")
        if "mtbf" in params and "mtbf_years" in params:
            raise ValueError("give mtbf= or mtbf_years=, not both")
        model = params.get("model", "exponential")
        if model not in ("exponential", "weibull"):
            raise ValueError(f"unknown failure model {model!r}")

    @property
    def mtbf(self) -> Optional[float]:
        """Per-node MTBF in seconds, if parameterized that way."""
        if "mtbf" in self.spec.params:
            return float(self.spec.params["mtbf"])
        if "mtbf_years" in self.spec.params:
            return float(self.spec.params["mtbf_years"]) * _SECONDS_PER_YEAR
        return None

    @property
    def rank(self) -> Optional[int]:
        """The single victim rank, when specified."""
        rank = self.spec.get("rank")
        return int(rank) if rank is not None else None

    @property
    def is_null(self) -> bool:
        return False

    def _interarrival_model(self):
        if self.spec.get("model", "exponential") == "weibull":
            return WeibullFailureModel(
                self.mtbf, shape=float(self.spec.get("shape", 0.7))
            )
        return ExponentialFailureModel(self.mtbf)

    def failure_plan(self, *, n_ranks=None, horizon=None, seed=None) -> FailurePlan:
        params = self.spec.params
        if "times" in params:
            times = params["times"]
            if not isinstance(times, tuple):
                times = (times,)
            ranks = params.get("ranks", params.get("rank"))
            if not isinstance(ranks, tuple):
                ranks = (ranks,) * len(times)
            if len(ranks) != len(times):
                raise ValueError("times= and ranks= must have equal lengths")
            return FailurePlan(list(zip(times, ranks)))
        if self.mtbf is None:
            raise ValueError(
                f"proc_fail spec {self.describe()!r} samples a plan but has "
                f"neither times= nor mtbf=/mtbf_years="
            )
        horizon = horizon if horizon is not None else params.get("horizon")
        if n_ranks is None or horizon is None:
            raise ValueError(
                "sampling a failure plan needs n_ranks and a horizon "
                "(pass them, or put horizon= in the spec)"
            )
        return FailurePlan.sample(
            self._interarrival_model(),
            int(n_ranks),
            float(horizon),
            rng=fault_stream(seed, "proc_fail"),
            max_failures=params.get("max_failures"),
        )


class BasisBitflipFaults(FaultModel):
    """Targeted bit flip in the newest Krylov basis vector.

    The controlled-injection model of experiment E1: at iteration
    ``at``, flip one uniformly chosen bit (within ``bits``) of one
    uniformly chosen element of the newest Arnoldi basis vector.
    Exposed as an engine iteration hook so it composes with any
    Arnoldi-type solver through the resilience-policy surface.
    """

    kind = "basis_bitflip"

    def _validate(self) -> None:
        bits = self.spec.get("bits")
        if bits is not None:
            lo, hi = bits
            if not (0 <= int(lo) <= int(hi) <= 63):
                raise ValueError(f"invalid bits range {bits!r}")

    @property
    def bits(self) -> Tuple[int, int]:
        bits = self.spec.get("bits", (0, 63))
        return (int(bits[0]), int(bits[1]))

    def iteration_hook(self, rng=None, *, seed=None, name="basis", at=None):
        """A ``(hook, info)`` pair injecting one flip at iteration ``at``.

        The draw order (bit first, victim index at fire time) is the
        historical E1 order, so spec-driven campaigns replay the seed
        goldens bit-for-bit.
        """
        gen = _resolve_rng(rng, seed, name)
        low, high = self.bits
        flip_bit = int(gen.integers(low, high + 1))
        fire_at = int(at if at is not None else self.spec.get("at", 0))
        info = {"done": False, "bit": flip_bit, "index": None}

        def hook(state):
            if info["done"] or state.total_iteration != fire_at:
                return
            target = np.asarray(state.basis[state.inner + 1])
            if target.size == 0:
                return
            index = int(gen.integers(0, target.size))
            flip_bit_array(target, index, flip_bit, inplace=True)
            info["done"] = True
            info["index"] = index

        return hook, info


class CompositeFaults(FaultModel):
    """Several fault models acting together (kind ``"compose"``).

    Capability calls delegate to the first component that supports
    them, so e.g. ``bitflip:p=0.05+proc_fail:mtbf=3600`` hands its
    bit-flip half to operator wrappers and its process-failure half to
    the simulated runtime.
    """

    kind = COMPOSE_KIND

    def __init__(self, spec: FaultSpec):
        super().__init__(spec)
        self._children = [build_model(child) for child in spec.children]

    @property
    def is_null(self) -> bool:
        return all(child.is_null for child in self._children)

    @property
    def probability(self) -> float:
        for child in self._children:
            if child.probability:
                return child.probability
        return 0.0

    @property
    def bits(self) -> Optional[Tuple[int, int]]:
        for child in self._children:
            if child.bits is not None:
                return child.bits
        return None

    def components(self) -> List[FaultModel]:
        return list(self._children)

    def _delegate(self, capability: str, *args, **kwargs):
        # Null components must not shadow active ones: "none" supports
        # every capability as a working no-op, so composing it first
        # (e.g. compose(control, extra)) would otherwise silently
        # disable the rest.  Null children only serve when nothing
        # active supports the capability.
        candidates = [c for c in self._children if not c.is_null] or self._children
        for child in candidates:
            try:
                return getattr(child, capability)(*args, **kwargs)
            except FaultCapabilityError:
                continue
        raise self._unsupported(capability)

    def schedule(self, rng=None, *, seed=None, name="schedule"):
        return self._delegate("schedule", rng, seed=seed, name=name)

    def injector(self, rng=None, *, seed=None, name="injector",
                 target=None, session=None):
        return self._delegate(
            "injector", rng, seed=seed, name=name, target=target, session=session
        )

    def environment(self, *, seed=None, cost_model=None, log=None):
        return self._delegate(
            "environment", seed=seed, cost_model=cost_model, log=log
        )

    def failure_plan(self, *, n_ranks=None, horizon=None, seed=None):
        return self._delegate(
            "failure_plan", n_ranks=n_ranks, horizon=horizon, seed=seed
        )

    def message_corruptor(self, rng=None, *, seed=None, name="messages"):
        return self._delegate(
            "message_corruptor", rng, seed=seed, name=name
        )

    def iteration_hook(self, rng=None, *, seed=None, name="basis", at=None):
        return self._delegate(
            "iteration_hook", rng, seed=seed, name=name, at=at
        )


MODEL_KINDS: Dict[str, Type[FaultModel]] = {
    cls.kind: cls
    for cls in (
        NoFaults,
        BitflipFaults,
        PerturbationFaults,
        MessageCorruptionFaults,
        ProcessFaults,
        BasisBitflipFaults,
        CompositeFaults,
    )
}


def build_model(spec: Union[str, dict, FaultSpec]) -> FaultModel:
    """Instantiate the fault model a spec describes."""
    spec = FaultSpec.parse(spec)
    try:
        cls = MODEL_KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown fault kind {spec.kind!r} "
            f"(known: {sorted(MODEL_KINDS)})"
        ) from None
    return cls(spec)
