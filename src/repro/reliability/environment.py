"""The selective-reliability environment.

:class:`SelectiveReliabilityEnvironment` pairs one reliable and one
unreliable :class:`~repro.reliability.domain.ReliabilityDomain` and exposes the
context-manager style API the SRP model calls for::

    env = SelectiveReliabilityEnvironment(fault_probability=1e-3, seed=7)
    with env.unreliable() as domain:
        y = domain.run(lambda: A @ x, flops=2 * A.nnz)
    with env.reliable() as domain:
        # bookkeeping done here is never corrupted
        accepted = validate(y)

It also produces the summary statistics (fraction of bytes / flops in
each domain, number of injected faults) that experiment E6 reports, and
a cost estimate through :class:`~repro.reliability.cost.ReliabilityCostModel`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Union

import numpy as np

from repro.reliability.injector import ArrayInjector, InjectionSession
from repro.reliability.schedule import BernoulliPerCallSchedule, FaultSchedule
from repro.reliability.cost import ReliabilityCostModel
from repro.reliability.domain import ReliabilityDomain
from repro.utils.logging import EventLog
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability

__all__ = ["SelectiveReliabilityEnvironment", "UnreliableOperator"]


class UnreliableOperator:
    """An operator whose every application runs in the unreliable domain.

    Wraps a plain apply-callable so each result is ``touch``-ed by the
    environment's unreliable domain (and may therefore be corrupted by
    its fault injector), while accounting the flops performed
    unreliably.  This is the one sanctioned way to slip an unreliable
    operator underneath *any* engine-backed solver -- the FT-GMRES
    inner solver and the solver-matrix fault campaigns both use it
    instead of hand-rolling domain wiring.

    Parameters
    ----------
    environment:
        The owning :class:`SelectiveReliabilityEnvironment`.
    apply:
        The underlying (correct) operator application ``x -> A x``.
    flops_per_call:
        Flops charged to the unreliable domain per application
        (``2 * nnz`` for a sparse matvec).

    Attributes
    ----------
    flops:
        Total flops performed through this operator so far.
    now:
        Logical timestamp handed to the fault schedule on each
        application; callers running phased computations (e.g. one
        inner solve per outer iteration) update it between phases.
    """

    def __init__(self, environment: "SelectiveReliabilityEnvironment", apply, *,
                 flops_per_call: float = 0.0):
        self.environment = environment
        self.apply = apply
        self.flops_per_call = float(flops_per_call)
        self.flops = 0.0
        self.now = 0.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        result = self.apply(x)
        self.flops += self.flops_per_call
        return self.environment.unreliable_domain.touch(result, now=self.now)


class SelectiveReliabilityEnvironment:
    """Owns the reliable and unreliable domains of one computation.

    Parameters
    ----------
    fault_probability:
        Per-operation corruption probability of the unreliable domain
        (each ``touch``/``run`` independently corrupts its array with
        this probability).  Ignored when ``schedule`` is given.
    schedule:
        Explicit fault schedule for the unreliable domain.
    seed:
        Seed for the unreliable domain's injector.
    bit_range:
        Bit positions the injector may flip.
    injector:
        Pre-built injector for the unreliable domain (anything with the
        :class:`~repro.reliability.injector.ArrayInjector` interface);
        overrides ``fault_probability``/``schedule``/``seed``.  This is
        how non-bit-flip fault models (e.g. value perturbation) supply
        their corruption primitive to the SRP machinery.
    cost_model:
        Reliability cost model used by :meth:`cost_summary`.
    """

    def __init__(
        self,
        fault_probability: float = 0.0,
        *,
        schedule: Optional[FaultSchedule] = None,
        seed: Union[None, int, np.random.Generator] = None,
        bit_range=None,
        injector=None,
        cost_model: Optional[ReliabilityCostModel] = None,
        log: Optional[EventLog] = None,
    ):
        check_probability(fault_probability, "fault_probability")
        self.log = log if log is not None else EventLog()
        if injector is None:
            rng = as_generator(seed)
            if schedule is None:
                schedule = BernoulliPerCallSchedule(fault_probability, rng=rng)
            session = InjectionSession(self.log)
            injector = ArrayInjector(
                schedule=schedule, rng=rng, bit_range=bit_range,
                target="srp_unreliable", session=session,
            )
        self.unreliable_domain = ReliabilityDomain(
            "unreliable", level="unreliable", injector=injector, log=self.log
        )
        self.reliable_domain = ReliabilityDomain("reliable", level="reliable", log=self.log)
        self.cost_model = cost_model if cost_model is not None else ReliabilityCostModel()

    # ------------------------------------------------------------------
    @contextmanager
    def reliable(self):
        """Context manager yielding the reliable domain."""
        yield self.reliable_domain

    @contextmanager
    def unreliable(self):
        """Context manager yielding the unreliable domain."""
        yield self.unreliable_domain

    def unreliable_operator(self, apply, *, flops_per_call: float = 0.0) -> UnreliableOperator:
        """Wrap ``apply`` as an :class:`UnreliableOperator` of this environment."""
        return UnreliableOperator(self, apply, flops_per_call=flops_per_call)

    # ------------------------------------------------------------------
    def faults_injected(self) -> int:
        """Total faults injected into the unreliable domain."""
        return self.unreliable_domain.faults_injected()

    def summary(self) -> Dict[str, float]:
        """Fractions of data and work in each domain, plus fault counts."""
        rel_bytes = self.reliable_domain.bytes_allocated
        unrel_bytes = self.unreliable_domain.bytes_allocated
        total_bytes = rel_bytes + unrel_bytes
        rel_flops = self.reliable_domain.flops
        unrel_flops = self.unreliable_domain.flops
        total_flops = rel_flops + unrel_flops
        return {
            "reliable_bytes": float(rel_bytes),
            "unreliable_bytes": float(unrel_bytes),
            "reliable_fraction_bytes": rel_bytes / total_bytes if total_bytes else 0.0,
            "reliable_flops": rel_flops,
            "unreliable_flops": unrel_flops,
            "reliable_fraction_flops": rel_flops / total_flops if total_flops else 0.0,
            "faults_injected": float(self.faults_injected()),
        }

    def cost_summary(self) -> Dict[str, float]:
        """Estimated cost of this run vs an all-reliable execution."""
        summary = self.summary()
        selective = self.cost_model.execution_cost(
            reliable_flops=summary["reliable_flops"],
            unreliable_flops=summary["unreliable_flops"],
        )
        all_reliable = self.cost_model.execution_cost(
            reliable_flops=summary["reliable_flops"] + summary["unreliable_flops"],
            unreliable_flops=0.0,
        )
        return {
            "selective_cost": selective,
            "all_reliable_cost": all_reliable,
            "savings_factor": all_reliable / selective if selective > 0 else 1.0,
        }
