"""Fault schedules.

A *schedule* decides **when** faults happen; the injectors in
:mod:`repro.reliability.injector` decide **what** gets corrupted.  Schedules
are expressed either in virtual time (seconds of the machine model) or
in abstract "ticks" (solver iterations, time steps) -- the schedule
itself does not care which, it is just a monotone coordinate.

Three concrete schedules cover the experiments:

* :class:`DeterministicSchedule` -- faults at explicitly listed ticks
  (used for targeted studies: "flip bit b of element i at iteration
  k").
* :class:`PoissonSchedule` -- faults arrive as a Poisson process with
  a given rate, the standard model for soft-error arrivals.
* :class:`BernoulliPerCallSchedule` -- every injection opportunity
  independently fires with probability *p* (the model used by the
  FT-GMRES paper for unreliable inner solves).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_non_negative, check_probability

__all__ = [
    "FaultSchedule",
    "DeterministicSchedule",
    "PoissonSchedule",
    "BernoulliPerCallSchedule",
    "NeverSchedule",
]


class FaultSchedule:
    """Abstract base class for fault schedules.

    Subclasses implement :meth:`due`, which is called by injectors at
    each injection opportunity with the current coordinate and returns
    the number of faults to inject at that opportunity.
    """

    def due(self, now: float) -> int:
        """Return how many faults are due at coordinate ``now``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state so the schedule can be replayed."""
        # Default: stateless schedule.

    def __call__(self, now: float) -> int:
        return self.due(now)


class NeverSchedule(FaultSchedule):
    """A schedule that never fires (useful as a fault-free control)."""

    def due(self, now: float) -> int:  # noqa: ARG002 - signature fixed by base
        return 0


class DeterministicSchedule(FaultSchedule):
    """Faults at an explicit, sorted list of coordinates.

    Each listed coordinate fires exactly once, the first time ``due``
    is called with ``now`` greater than or equal to it.

    Parameters
    ----------
    times:
        Iterable of coordinates (need not be sorted; duplicates mean
        multiple faults at the same coordinate).
    """

    def __init__(self, times: Iterable[float]):
        self._times: List[float] = sorted(float(t) for t in times)
        for t in self._times:
            check_non_negative(t, "fault time")
        self._cursor = 0

    def due(self, now: float) -> int:
        count = 0
        while self._cursor < len(self._times) and self._times[self._cursor] <= now:
            count += 1
            self._cursor += 1
        return count

    def reset(self) -> None:
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Number of scheduled faults not yet fired."""
        return len(self._times) - self._cursor

    @property
    def times(self) -> List[float]:
        """The scheduled coordinates (sorted)."""
        return list(self._times)


class PoissonSchedule(FaultSchedule):
    """Poisson-process fault arrivals with a fixed rate.

    Parameters
    ----------
    rate:
        Expected number of faults per unit of the schedule coordinate
        (e.g. faults per second of virtual time, or faults per solver
        iteration).
    rng:
        Seed or generator.
    horizon:
        Optional upper bound on the coordinate; arrival times are
        pre-sampled up to the horizon.  If omitted, arrivals are
        sampled lazily as ``due`` advances.
    """

    def __init__(
        self,
        rate: float,
        rng: Union[None, int, np.random.Generator] = None,
        *,
        horizon: Optional[float] = None,
    ):
        self.rate = check_non_negative(rate, "rate")
        self._rng = as_generator(rng)
        self._next: Optional[float] = None
        self._last_now = 0.0
        self._pending: List[float] = []
        if horizon is not None and self.rate > 0:
            check_non_negative(horizon, "horizon")
            t = 0.0
            while True:
                t += float(self._rng.exponential(1.0 / self.rate))
                if t > horizon:
                    break
                self._pending.append(t)
            self._deterministic = DeterministicSchedule(self._pending)
        else:
            self._deterministic = None
        self._initial_pending = list(self._pending)

    def _sample_next(self, start: float) -> float:
        return start + float(self._rng.exponential(1.0 / self.rate))

    def due(self, now: float) -> int:
        if self.rate == 0:
            return 0
        if self._deterministic is not None:
            return self._deterministic.due(now)
        count = 0
        if self._next is None:
            self._next = self._sample_next(0.0)
        while self._next <= now:
            count += 1
            self._next = self._sample_next(self._next)
        return count

    def reset(self) -> None:
        if self._deterministic is not None:
            self._deterministic.reset()
        self._next = None

    @property
    def presampled_times(self) -> List[float]:
        """The pre-sampled arrival times (only with ``horizon``)."""
        return list(self._initial_pending)


class BernoulliPerCallSchedule(FaultSchedule):
    """Each injection opportunity fires independently with probability p.

    The coordinate passed to :meth:`due` is ignored; this schedule
    models "every unreliable operation has a probability p of being
    corrupted", which is how selective-reliability studies typically
    parameterize the unreliable regime.
    """

    def __init__(
        self,
        probability: float,
        rng: Union[None, int, np.random.Generator] = None,
        *,
        max_faults: Optional[int] = None,
    ):
        self.probability = check_probability(probability, "probability")
        self._rng = as_generator(rng)
        self.max_faults = max_faults
        self._fired = 0

    def due(self, now: float) -> int:  # noqa: ARG002 - coordinate ignored
        if self.max_faults is not None and self._fired >= self.max_faults:
            return 0
        if float(self._rng.random()) < self.probability:
            self._fired += 1
            return 1
        return 0

    def reset(self) -> None:
        self._fired = 0

    @property
    def fired(self) -> int:
        """Number of faults fired so far."""
        return self._fired
