"""Named fault-model registry: the fault axis campaigns sweep.

Mirrors :mod:`repro.krylov.registry`: each entry names one declarative
:class:`~repro.reliability.spec.FaultSpec` under a stable key, so
drivers, campaigns and the CLI resolve fault models *by name* -- or by
inline spec string -- and sweep solver x policy x fault grids without
constructing injectors by hand.

:func:`resolve_faults` is the one resolution entry point used across
the toolkit: it accepts a registry name, a compact spec string, a dict,
a :class:`FaultSpec` or an already-built model, applies optional
parameter overrides, and returns the ready
:class:`~repro.reliability.models.FaultModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.reliability.models import FaultModel, build_model
from repro.reliability.spec import FaultSpec

__all__ = [
    "RegisteredFaultModel",
    "FaultRegistry",
    "default_fault_registry",
    "fault_names",
    "resolve_faults",
]


@dataclass(frozen=True)
class RegisteredFaultModel:
    """One named fault-model configuration.

    Attributes
    ----------
    name:
        Stable registry key (``"bitflip_exponent"``, ``"proc_fail"``...).
    spec:
        The declarative configuration the name stands for.
    title:
        One-line human description.
    experiments:
        Experiment ids whose drivers/benchmarks exercise this fault
        model (drives ``run_benchmarks.py --faults``).
    """

    name: str
    spec: FaultSpec
    title: str
    experiments: Tuple[str, ...] = ()

    def build(self, **overrides) -> FaultModel:
        """Instantiate the model, with optional parameter overrides."""
        spec = self.spec.with_params(**overrides) if overrides else self.spec
        return build_model(spec)


class FaultRegistry:
    """Index of named fault-model configurations."""

    def __init__(self, entries: Optional[List[RegisteredFaultModel]] = None):
        self._by_name: Dict[str, RegisteredFaultModel] = {}
        for entry in entries if entries is not None else _builtin_models():
            self.add(entry)

    def add(self, entry: RegisteredFaultModel) -> None:
        key = entry.name.lower()
        if key in self._by_name:
            raise ValueError(f"duplicate fault-model name {key!r}")
        self._by_name[key] = entry

    def get(self, name: str) -> RegisteredFaultModel:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown fault model {name!r} (known: {', '.join(self.names())})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._by_name

    def __iter__(self):
        return iter(sorted(self._by_name.values(), key=lambda e: e.name))

    def __len__(self) -> int:
        return len(self._by_name)


def _builtin_models() -> List[RegisteredFaultModel]:
    def spec(text: str) -> FaultSpec:
        return FaultSpec.parse(text)

    return [
        RegisteredFaultModel(
            name="none",
            spec=spec("none"),
            title="Fault-free control",
            experiments=("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"),
        ),
        RegisteredFaultModel(
            name="bitflip",
            spec=spec("bitflip:p=0.02"),
            title="Per-operation Bernoulli bit flip, any bit",
            experiments=("E2", "E3", "E6", "E8", "E9"),
        ),
        RegisteredFaultModel(
            name="bitflip_mantissa",
            spec=spec("bitflip:p=0.02,bits=0..51"),
            title="Bernoulli bit flip restricted to mantissa bits",
            experiments=("E2", "E3", "E6", "E8", "E9"),
        ),
        RegisteredFaultModel(
            name="bitflip_exponent",
            spec=spec("bitflip:p=0.02,bits=52..62"),
            title="Bernoulli bit flip restricted to exponent bits",
            experiments=("E2", "E3", "E6", "E8", "E9"),
        ),
        RegisteredFaultModel(
            name="basis_bitflip",
            spec=spec("basis_bitflip:bits=0..63"),
            title="Targeted single flip in the newest Krylov basis vector",
            experiments=("E1",),
        ),
        RegisteredFaultModel(
            name="sdc_value",
            spec=spec("perturb:p=0.01,scale=1000.0"),
            title="SDC value perturbation (scale one element x1e3)",
            experiments=("E2", "E3", "E6", "E8", "E9"),
        ),
        RegisteredFaultModel(
            name="msg_corrupt",
            spec=spec("msg_corrupt:p=0.001"),
            title="Per-send message payload corruption",
            experiments=("E4",),
        ),
        RegisteredFaultModel(
            name="proc_fail",
            spec=spec("proc_fail:mtbf=3600.0"),
            title="Exponential (memoryless) process failures",
            experiments=("E4", "E5", "E7"),
        ),
        RegisteredFaultModel(
            name="proc_fail_weibull",
            spec=spec("proc_fail:mtbf=3600.0,model=weibull,shape=0.7"),
            title="Weibull process failures (infant-mortality hazard)",
            experiments=("E4", "E7"),
        ),
    ]


_DEFAULT: Optional[FaultRegistry] = None


def default_fault_registry() -> FaultRegistry:
    """The process-wide registry of named fault models."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = FaultRegistry()
    return _DEFAULT


def fault_names() -> List[str]:
    """Sorted names of all registered fault models."""
    return default_fault_registry().names()


def resolve_faults(
    value: Union[None, str, Mapping, FaultSpec, FaultModel],
    **overrides,
) -> FaultModel:
    """Resolve anything fault-shaped into a ready :class:`FaultModel`.

    ``None`` resolves to the fault-free model.  Strings are looked up
    in the registry first; anything else is parsed as a compact spec
    string.  ``overrides`` merge into the spec's parameters (``None``
    values are ignored), so drivers can forward optional arguments
    like ``bits=bit_range`` without clobbering explicit spec values.
    """
    if isinstance(value, FaultModel):
        return value.with_params(**overrides) if overrides else value
    if value is None:
        value = "none"
    if isinstance(value, str) and value in default_fault_registry():
        return default_fault_registry().get(value).build(**overrides)
    spec = FaultSpec.parse(value)
    if overrides:
        spec = spec.with_params(**overrides)
    return build_model(spec)
