"""Bit-level fault primitives for IEEE-754 double precision.

Silent data corruption is modeled, as in the SDC-detection literature
the paper builds on (Elliott & Hoemmen's bit-flip-resilient GMRES),
as the flip of a single bit in the 64-bit representation of a floating
point number.  The *position* of the flipped bit determines the
magnitude of the induced error:

* bits 0-51  -- mantissa: small relative error (at most a factor of 2);
* bits 52-62 -- exponent: error can be astronomically large or drive
  the value toward zero;
* bit 63     -- sign flip.

All helpers operate out-of-place on NumPy data and never use Python
``struct`` in inner loops; views via :func:`numpy.ndarray.view` keep
array-scale injection vectorized.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_integer

__all__ = [
    "bits_of",
    "float_from_bits",
    "flip_bit_float64",
    "flip_bit_array",
    "flip_random_bit",
    "relative_perturbation",
    "MANTISSA_BITS",
    "EXPONENT_BITS",
    "SIGN_BIT",
]

#: Bit indices (little-endian, 0 = least significant mantissa bit).
MANTISSA_BITS = tuple(range(0, 52))
EXPONENT_BITS = tuple(range(52, 63))
SIGN_BIT = 63


def bits_of(value: float) -> int:
    """Return the 64-bit integer pattern of a double-precision value."""
    return int(np.float64(value).view(np.uint64))


def float_from_bits(bits: int) -> float:
    """Return the double-precision value whose bit pattern is ``bits``."""
    if not 0 <= int(bits) < 2**64:
        raise ValueError("bits must fit in 64 bits")
    return float(np.uint64(bits).view(np.float64))


def flip_bit_float64(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0..63) of a double-precision value.

    Parameters
    ----------
    value:
        The original value.
    bit:
        Bit index; 0 is the least-significant mantissa bit and 63 is
        the sign bit.

    Returns
    -------
    float
        The corrupted value.  Note that exponent-bit flips can yield
        ``inf`` or ``nan``; this is intentional and the skeptical
        checks must cope with it.
    """
    bit = check_integer(bit, "bit")
    if not 0 <= bit <= 63:
        raise ValueError(f"bit must be in [0, 63], got {bit}")
    pattern = np.uint64(bits_of(value)) ^ np.uint64(1 << bit)
    return float(pattern.view(np.float64))


def flip_bit_array(
    array: np.ndarray,
    index: Union[int, Tuple[int, ...]],
    bit: int,
    *,
    inplace: bool = False,
) -> np.ndarray:
    """Flip one bit of one element of a float64 array.

    Parameters
    ----------
    array:
        Array of dtype ``float64`` (other dtypes are rejected to avoid
        silent precision surprises).
    index:
        Flat index (int) or multi-dimensional index tuple of the
        element to corrupt.
    bit:
        Bit position, 0..63.
    inplace:
        If ``True`` the array is modified in place and returned;
        otherwise a corrupted copy is returned and the input is left
        untouched.
    """
    arr = np.asarray(array)
    if arr.dtype != np.float64:
        raise TypeError(f"flip_bit_array requires float64 data, got {arr.dtype}")
    bit = check_integer(bit, "bit")
    if not 0 <= bit <= 63:
        raise ValueError(f"bit must be in [0, 63], got {bit}")
    out = arr if inplace else arr.copy()
    flat = out.reshape(-1)
    if isinstance(index, tuple):
        flat_index = int(np.ravel_multi_index(index, out.shape))
    else:
        flat_index = int(index)
        if flat_index < 0:
            flat_index += flat.size
    if not 0 <= flat_index < flat.size:
        raise IndexError(f"index {index!r} out of bounds for size {flat.size}")
    view = flat.view(np.uint64)
    view[flat_index] = view[flat_index] ^ np.uint64(1 << bit)
    return out


def flip_random_bit(
    array: np.ndarray,
    rng: Union[None, int, np.random.Generator] = None,
    *,
    bit_range: Optional[Tuple[int, int]] = None,
    inplace: bool = False,
) -> Tuple[np.ndarray, int, int]:
    """Flip a uniformly random bit of a uniformly random element.

    Parameters
    ----------
    array:
        Target float64 array.
    rng:
        Seed or generator controlling the random choice.
    bit_range:
        Inclusive ``(low, high)`` range of bit positions to choose
        from.  Defaults to the full 0..63 range.  Restricting the range
        (e.g. ``(52, 62)`` for exponent bits) is how experiments sweep
        error magnitudes.
    inplace:
        Whether to modify the array in place.

    Returns
    -------
    (corrupted, flat_index, bit):
        The corrupted array, the flat index of the victim element and
        the flipped bit position.
    """
    arr = np.asarray(array)
    if arr.size == 0:
        raise ValueError("cannot flip a bit of an empty array")
    gen = as_generator(rng)
    low, high = bit_range if bit_range is not None else (0, 63)
    low = check_integer(low, "bit_range[0]")
    high = check_integer(high, "bit_range[1]")
    if not (0 <= low <= high <= 63):
        raise ValueError(f"invalid bit_range {bit_range!r}")
    flat_index = int(gen.integers(0, arr.size))
    bit = int(gen.integers(low, high + 1))
    corrupted = flip_bit_array(arr, flat_index, bit, inplace=inplace)
    return corrupted, flat_index, bit


def relative_perturbation(original: float, corrupted: float) -> float:
    """Return ``|corrupted - original| / max(|original|, tiny)``.

    Infinite or NaN corrupted values map to ``inf`` so that experiment
    tables can bucket "catastrophic" flips separately.
    """
    if not np.isfinite(corrupted):
        return float("inf")
    denom = max(abs(original), np.finfo(float).tiny)
    with np.errstate(over="ignore"):
        ratio = abs(corrupted - original) / denom
    return float(ratio)
