"""Bit-level fault primitives for IEEE-754 double and single precision.

Silent data corruption is modeled, as in the SDC-detection literature
the paper builds on (Elliott & Hoemmen's bit-flip-resilient GMRES),
as the flip of a single bit in the binary representation of a floating
point number.  The *position* of the flipped bit determines the
magnitude of the induced error.  For float64 (the default everywhere):

* bits 0-51  -- mantissa: small relative error (at most a factor of 2);
* bits 52-62 -- exponent: error can be astronomically large or drive
  the value toward zero;
* bit 63     -- sign flip.

Float32 arrays (the mixed-precision layer's compute dtype) are flipped
natively through 32-bit patterns -- bits 0-22 mantissa, 23-30 exponent,
31 sign -- instead of erroring or silently upcasting, so ``bitflip``
fault models compose with ``precision="fp32"`` solves.

All helpers operate out-of-place on NumPy data and never use Python
``struct`` in inner loops; views via :func:`numpy.ndarray.view` keep
array-scale injection vectorized and contiguity-preserving.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_integer

__all__ = [
    "bits_of",
    "float_from_bits",
    "flip_bit_float64",
    "flip_bit_float32",
    "flip_bit_array",
    "flip_random_bit",
    "max_bit_index",
    "relative_perturbation",
    "MANTISSA_BITS",
    "EXPONENT_BITS",
    "SIGN_BIT",
    "MANTISSA_BITS_FP32",
    "EXPONENT_BITS_FP32",
    "SIGN_BIT_FP32",
]

#: Bit indices (little-endian, 0 = least significant mantissa bit).
MANTISSA_BITS = tuple(range(0, 52))
EXPONENT_BITS = tuple(range(52, 63))
SIGN_BIT = 63

#: The float32 layout: 23 mantissa bits, 8 exponent bits, 1 sign bit.
MANTISSA_BITS_FP32 = tuple(range(0, 23))
EXPONENT_BITS_FP32 = tuple(range(23, 31))
SIGN_BIT_FP32 = 31

#: dtype -> same-width unsigned integer type for pattern views.
_BIT_VIEWS = {
    np.dtype(np.float64): (np.uint64, 63),
    np.dtype(np.float32): (np.uint32, 31),
}


def max_bit_index(dtype) -> int:
    """Highest flippable bit index for a float dtype (63 or 31)."""
    try:
        return _BIT_VIEWS[np.dtype(dtype)][1]
    except KeyError:
        raise TypeError(
            f"bit flips support float64 and float32 data, got {np.dtype(dtype)}"
        ) from None


def bits_of(value: float) -> int:
    """Return the 64-bit integer pattern of a double-precision value."""
    return int(np.float64(value).view(np.uint64))


def float_from_bits(bits: int) -> float:
    """Return the double-precision value whose bit pattern is ``bits``."""
    if not 0 <= int(bits) < 2**64:
        raise ValueError("bits must fit in 64 bits")
    return float(np.uint64(bits).view(np.float64))


def flip_bit_float64(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0..63) of a double-precision value.

    Parameters
    ----------
    value:
        The original value.
    bit:
        Bit index; 0 is the least-significant mantissa bit and 63 is
        the sign bit.

    Returns
    -------
    float
        The corrupted value.  Note that exponent-bit flips can yield
        ``inf`` or ``nan``; this is intentional and the skeptical
        checks must cope with it.
    """
    bit = check_integer(bit, "bit")
    if not 0 <= bit <= 63:
        raise ValueError(f"bit must be in [0, 63], got {bit}")
    pattern = np.uint64(bits_of(value)) ^ np.uint64(1 << bit)
    return float(pattern.view(np.float64))


def flip_bit_float32(value: float, bit: int) -> float:
    """Flip bit ``bit`` (0..31) of a single-precision value.

    The float32 sibling of :func:`flip_bit_float64`: ``value`` is
    rounded to float32 first, the flip happens in the 32-bit pattern,
    and the corrupted float32 value is returned (as a Python float).
    """
    bit = check_integer(bit, "bit")
    if not 0 <= bit <= 31:
        raise ValueError(f"bit must be in [0, 31], got {bit}")
    pattern = np.float32(value).view(np.uint32) ^ np.uint32(1 << bit)
    return float(pattern.view(np.float32))


def flip_bit_array(
    array: np.ndarray,
    index: Union[int, Tuple[int, ...]],
    bit: int,
    *,
    inplace: bool = False,
) -> np.ndarray:
    """Flip one bit of one element of a float64 or float32 array.

    Parameters
    ----------
    array:
        Array of dtype ``float64`` or ``float32`` (other dtypes are
        rejected to avoid silent precision surprises).  The flip runs
        through a same-width unsigned-integer view, so float32 arrays
        are corrupted natively via 32-bit patterns.
    index:
        Flat index (int) or multi-dimensional index tuple of the
        element to corrupt.
    bit:
        Bit position, 0..63 for float64 or 0..31 for float32.
    inplace:
        If ``True`` the array is modified in place and returned;
        otherwise a corrupted copy is returned and the input is left
        untouched.
    """
    arr = np.asarray(array)
    if arr.dtype not in _BIT_VIEWS:
        raise TypeError(
            f"flip_bit_array requires float64 or float32 data, got {arr.dtype}"
        )
    uint_type, max_bit = _BIT_VIEWS[arr.dtype]
    bit = check_integer(bit, "bit")
    if not 0 <= bit <= max_bit:
        raise ValueError(
            f"bit must be in [0, {max_bit}] for {arr.dtype}, got {bit}"
        )
    out = arr if inplace else arr.copy()
    flat = out.reshape(-1)
    if isinstance(index, tuple):
        flat_index = int(np.ravel_multi_index(index, out.shape))
    else:
        flat_index = int(index)
        if flat_index < 0:
            flat_index += flat.size
    if not 0 <= flat_index < flat.size:
        raise IndexError(f"index {index!r} out of bounds for size {flat.size}")
    view = flat.view(uint_type)
    view[flat_index] = view[flat_index] ^ uint_type(1 << bit)
    return out


def flip_random_bit(
    array: np.ndarray,
    rng: Union[None, int, np.random.Generator] = None,
    *,
    bit_range: Optional[Tuple[int, int]] = None,
    inplace: bool = False,
) -> Tuple[np.ndarray, int, int]:
    """Flip a uniformly random bit of a uniformly random element.

    Parameters
    ----------
    array:
        Target float64 or float32 array.
    rng:
        Seed or generator controlling the random choice.
    bit_range:
        Inclusive ``(low, high)`` range of bit positions to choose
        from.  Defaults to the full width of the dtype (0..63 for
        float64, 0..31 for float32).  Restricting the range (e.g.
        ``(52, 62)`` for float64 exponent bits) is how experiments
        sweep error magnitudes.
    inplace:
        Whether to modify the array in place.

    Returns
    -------
    (corrupted, flat_index, bit):
        The corrupted array, the flat index of the victim element and
        the flipped bit position.
    """
    arr = np.asarray(array)
    if arr.size == 0:
        raise ValueError("cannot flip a bit of an empty array")
    max_bit = max_bit_index(arr.dtype)
    gen = as_generator(rng)
    low, high = bit_range if bit_range is not None else (0, max_bit)
    low = check_integer(low, "bit_range[0]")
    high = check_integer(high, "bit_range[1]")
    if not (0 <= low <= high <= max_bit):
        raise ValueError(
            f"invalid bit_range {bit_range!r} for {arr.dtype} "
            f"(bits 0..{max_bit})"
        )
    flat_index = int(gen.integers(0, arr.size))
    bit = int(gen.integers(low, high + 1))
    corrupted = flip_bit_array(arr, flat_index, bit, inplace=inplace)
    return corrupted, flat_index, bit


def relative_perturbation(original: float, corrupted: float) -> float:
    """Return ``|corrupted - original| / max(|original|, tiny)``.

    Infinite or NaN corrupted values map to ``inf`` so that experiment
    tables can bucket "catastrophic" flips separately.
    """
    if not np.isfinite(corrupted):
        return float("inf")
    denom = max(abs(original), np.finfo(float).tiny)
    with np.errstate(over="ignore"):
        ratio = abs(corrupted - original) / denom
    return float(ratio)
