"""Declarative, serializable fault specifications.

A :class:`FaultSpec` names one fault model *kind* plus its parameters,
and is the unit of the reliability layer's declarative API: every
experiment driver's ``faults=`` parameter, every campaign fault axis
and every registry entry is a ``FaultSpec`` (or something
:meth:`FaultSpec.parse` can turn into one).

Three interchangeable wire forms exist:

* **compact strings** -- ``"bitflip:p=1e-4,target=matvec"`` -- the form
  campaigns sweep and humans type;
* **dicts** -- ``{"kind": "bitflip", "params": {"p": 1e-4}}`` -- the
  form the JSONL result store persists;
* **FaultSpec objects** -- what the models consume.

String grammar (see CAMPAIGNS.md for the full manual)::

    SPEC      := SINGLE ( "+" SINGLE )*        # "+" composes models
    SINGLE    := KIND [ ":" PARAM ("," PARAM)* ]
    PARAM     := NAME "=" VALUE
    VALUE     := int | float | bool | "none" | NAME
               | VALUE ".." VALUE               # inclusive range -> tuple
               | VALUE (";" VALUE)+ [";"]       # list -> tuple; a trailing
                                                # ";" marks a 1-element list

Examples: ``"none"``, ``"bitflip:p=0.02,bits=52..62"``,
``"proc_fail:times=1.5;3.0,ranks=1;2"``,
``"bitflip:p=0.05+proc_fail:mtbf=3600,horizon=7200"``.

Parsing and formatting round-trip exactly (floats use ``repr``), which
is what makes fault specs usable as campaign scenario-key material.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Sequence, Tuple, Union

__all__ = [
    "FaultSpec",
    "compose",
    "parse_spec_value",
    "format_spec_value",
    "parse_kind_params",
    "format_kind_params",
    "split_composed",
]

COMPOSE_KIND = "compose"

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

# Composition separator: a "+" introducing the next spec's kind name.
# A kind always starts with a letter/underscore while a float
# exponent's "+" ("1e+16") is always followed by a digit, so the two
# never collide.
_COMPOSE_SPLIT = re.compile(r"\+(?=\s*[A-Za-z_])")


def _parse_scalar(text: str) -> Any:
    """Parse one scalar token: int, float, bool, none, or bare name."""
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if _NAME_RE.match(text):
        return text
    raise ValueError(f"cannot parse spec value {text!r}")


def parse_spec_value(text: str) -> Any:
    """Parse a parameter value token of the spec-string grammar."""
    text = text.strip()
    if not text:
        raise ValueError("empty spec value")
    if ";" in text:
        parts = text.split(";")
        if parts[-1].strip() == "":
            # A trailing ";" marks a single-element list ("times=1.5;").
            parts = parts[:-1]
        if not parts or any(not part.strip() for part in parts):
            raise ValueError(f"malformed list value {text!r}")
        return tuple(_parse_scalar(part.strip()) for part in parts)
    if ".." in text:
        lo, _, hi = text.partition("..")
        return (_parse_scalar(lo.strip()), _parse_scalar(hi.strip()))
    return _parse_scalar(text)


def _format_scalar(value: Any) -> str:
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        # "1e+16" -> "1e16": parses identically, and keeps "+" free to
        # act as the composition separator (see _COMPOSE_SPLIT).
        return repr(value).replace("e+", "e")
    if isinstance(value, str):
        if not _NAME_RE.match(value):
            raise ValueError(
                f"string spec values must be bare names, got {value!r}"
            )
        return value
    raise TypeError(f"unsupported spec value type {type(value).__name__}")


def format_spec_value(value: Any) -> str:
    """Format a parameter value in the spec-string grammar."""
    if isinstance(value, (tuple, list)):
        if not value:
            raise ValueError("empty list spec values are unsupported")
        if len(value) == 1:
            # Trailing ";" keeps one-element lists round-trippable.
            return _format_scalar(value[0]) + ";"
        if len(value) == 2 and all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in value
        ):
            return f"{_format_scalar(value[0])}..{_format_scalar(value[1])}"
        return ";".join(_format_scalar(v) for v in value)
    return _format_scalar(value)


def _normalize_value(value: Any) -> Any:
    """Canonicalize a parameter value (lists -> tuples, numpy -> python)."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalize_value(v) for v in value)
    if hasattr(value, "item") and type(value).__module__ == "numpy":
        return value.item()
    return value


def parse_kind_params(text: str, label: str = "spec") -> Tuple[str, Dict[str, Any]]:
    """Parse one ``KIND[:NAME=VALUE,...]`` token into ``(kind, params)``.

    The single-spec grammar shared by :class:`FaultSpec` and
    :class:`repro.precond.PrecondSpec`; ``label`` names the spec
    flavour in error messages.
    """
    kind, _, tail = text.partition(":")
    kind = kind.strip()
    if not kind:
        raise ValueError(f"malformed {label} string {text!r}")
    params: Dict[str, Any] = {}
    if tail.strip():
        for item in tail.split(","):
            name, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed parameter {item!r} in {label} {text!r}"
                )
            params[name.strip()] = parse_spec_value(value)
    return kind, params


def format_kind_params(kind: str, params: Mapping[str, Any]) -> str:
    """Format ``(kind, params)`` as one ``KIND[:NAME=VALUE,...]`` token.

    Inverse of :func:`parse_kind_params`; the single-spec formatter
    shared by :class:`FaultSpec`, :class:`repro.precond.PrecondSpec`
    and :class:`repro.campaign.executor.ChaosSpec`.
    """
    if not params:
        return kind
    body = ",".join(
        f"{name}={format_spec_value(value)}" for name, value in params.items()
    )
    return f"{kind}:{body}"


def split_composed(text: str, label: str = "spec") -> list:
    """Split a spec string on the ``+`` composition separator.

    Returns the non-empty single-spec tokens; raises on malformed
    strings (empty components).  Shared by every spec flavour that
    supports ``"a:p=1+b:q=2"`` composition.
    """
    parts = [part.strip() for part in _COMPOSE_SPLIT.split(text)]
    if not parts or any(not part for part in parts):
        raise ValueError(f"malformed {label} string {text!r}")
    return parts


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault-model configuration.

    Attributes
    ----------
    kind:
        Fault-model kind (``"none"``, ``"bitflip"``, ``"perturb"``,
        ``"msg_corrupt"``, ``"proc_fail"``, ``"basis_bitflip"``,
        ``"compose"``).  Resolved against
        :data:`repro.reliability.models.MODEL_KINDS`.
    params:
        Model parameters (read-only mapping; values are scalars or
        tuples of scalars).
    children:
        Component specs for ``kind == "compose"``; empty otherwise.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    children: Tuple["FaultSpec", ...] = ()

    def __post_init__(self):
        if not _NAME_RE.match(self.kind):
            raise ValueError(f"invalid fault kind {self.kind!r}")
        normalized = {}
        for name in sorted(self.params):
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid parameter name {name!r}")
            normalized[name] = _normalize_value(self.params[name])
        object.__setattr__(self, "kind", self.kind.lower())
        object.__setattr__(self, "params", normalized)
        object.__setattr__(self, "children", tuple(self.children))
        if self.kind == COMPOSE_KIND:
            if len(self.children) < 2:
                raise ValueError("compose specs need at least two children")
            if self.params:
                raise ValueError("compose specs take no parameters of their own")
        elif self.children:
            raise ValueError(f"only {COMPOSE_KIND!r} specs may have children")

    # -- parsing -------------------------------------------------------
    @classmethod
    def parse(cls, value: Union[str, Mapping, "FaultSpec"]) -> "FaultSpec":
        """Coerce a string, dict or FaultSpec into a FaultSpec."""
        if isinstance(value, FaultSpec):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        if isinstance(value, str):
            return cls._parse_string(value)
        raise TypeError(
            f"cannot parse a fault spec from {type(value).__name__}"
        )

    @classmethod
    def _parse_string(cls, text: str) -> "FaultSpec":
        parts = split_composed(text, "fault spec")
        specs = [cls._parse_single(part) for part in parts]
        if len(specs) == 1:
            return specs[0]
        return compose(*specs)

    @classmethod
    def _parse_single(cls, text: str) -> "FaultSpec":
        return cls(*parse_kind_params(text, "fault spec"))

    # -- serialization -------------------------------------------------
    def to_string(self) -> str:
        """Compact spec-string form; inverse of :meth:`parse`."""
        if self.kind == COMPOSE_KIND:
            return "+".join(child.to_string() for child in self.children)
        return format_kind_params(self.kind, self.params)

    def to_dict(self) -> dict:
        """JSON-compatible dict form; inverse of :meth:`from_dict`."""
        data: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            data["params"] = {k: list(v) if isinstance(v, tuple) else v
                              for k, v in self.params.items()}
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a loose dict)."""
        if "kind" not in data:
            raise ValueError("fault spec dicts need a 'kind' entry")
        extra = set(data) - {"kind", "params", "children"}
        if extra:
            # Loose form: {"kind": "bitflip", "p": 1e-4}.
            params = {k: data[k] for k in data if k != "kind"}
            return cls(str(data["kind"]), params)
        children = tuple(
            cls.from_dict(child) for child in data.get("children", ())
        )
        return cls(str(data["kind"]), dict(data.get("params", {})), children)

    # -- convenience ---------------------------------------------------
    def with_params(self, **overrides: Any) -> "FaultSpec":
        """Return a copy with ``overrides`` merged into the parameters.

        ``None`` overrides are dropped (they mean "keep the default"),
        so callers can forward optional driver arguments verbatim.
        """
        if self.kind == COMPOSE_KIND:
            raise ValueError(
                "cannot override parameters of a compose spec; "
                "override its children instead"
            )
        merged = dict(self.params)
        merged.update({k: v for k, v in overrides.items() if v is not None})
        return FaultSpec(self.kind, merged)

    def get(self, name: str, default: Any = None) -> Any:
        """Parameter lookup with a default."""
        return self.params.get(name, default)

    def __str__(self) -> str:
        return self.to_string()


def compose(*specs: Union[str, Mapping, FaultSpec]) -> FaultSpec:
    """Compose several fault specs into one (``kind="compose"``).

    Nested compositions are flattened, so
    ``compose(a, compose(b, c))`` equals ``compose(a, b, c)``.
    """
    children = []
    for spec in specs:
        parsed = FaultSpec.parse(spec)
        if parsed.kind == COMPOSE_KIND:
            children.extend(parsed.children)
        else:
            children.append(parsed)
    if not children:
        raise ValueError("compose() needs at least one spec")
    if len(children) == 1:
        return children[0]
    return FaultSpec(COMPOSE_KIND, {}, tuple(children))
