#!/usr/bin/env bash
# CI gate: tier-1 tests + registry self-checks (solver / fault /
# preconditioner axes) + doc-link check + golden determinism + smoke
# and precond campaigns with memoization re-runs.
#
#   scripts/verify.sh            # everything (~2 min)
#   scripts/verify.sh --fast     # skip the second golden pass
#
# Exits non-zero on the first failure.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== solver registry self-check =="
listing="$(python -m repro.campaign list)"
grep -q "registered solvers" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the solver axis" >&2
    exit 1
}
for solver in gmres fgmres pipelined_gmres cg pipelined_cg ft_gmres sdc_gmres; do
    # Anchored: the solver table renders one row per solver with the
    # name in the first column, so a bare substring match ('gmres' via
    # 'fgmres') must not count.
    grep -qE "^$solver " <<<"$listing" || {
        echo "ERROR: solver '$solver' missing from the registry listing" >&2
        exit 1
    }
done
python -m repro.campaign list --campaign solvers > /dev/null
echo "registry OK (7 solvers, 'solvers' campaign expands)"

echo
echo "== reliability registry self-check =="
grep -q "registered fault models" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the fault axis" >&2
    exit 1
}
for model in none bitflip bitflip_mantissa bitflip_exponent basis_bitflip \
             sdc_value msg_corrupt proc_fail proc_fail_weibull; do
    grep -qE "^$model " <<<"$listing" || {
        echo "ERROR: fault model '$model' missing from the registry listing" >&2
        exit 1
    }
done
# Every named fault model must instantiate, serialize to its compact
# string form, and round-trip back to the identical spec.
python - <<'PY'
from repro.reliability.registry import default_fault_registry
from repro.reliability.spec import FaultSpec

for entry in default_fault_registry():
    model = entry.build()
    text = model.describe()
    roundtrip = FaultSpec.parse(text)
    assert roundtrip == entry.spec, (entry.name, text, roundtrip, entry.spec)
    assert FaultSpec.from_dict(entry.spec.to_dict()) == entry.spec, entry.name
print(f"reliability registry OK ({len(default_fault_registry())} fault models round-trip)")
PY

echo
echo "== preconditioner registry self-check =="
grep -q "registered preconditioners" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the preconditioner axis" >&2
    exit 1
}
for entry in none jacobi ssor ssor_over poly2 poly4 bjacobi8; do
    grep -qE "^$entry " <<<"$listing" || {
        echo "ERROR: preconditioner '$entry' missing from the registry listing" >&2
        exit 1
    }
done
python -m repro.campaign list --campaign precond > /dev/null
# Every named preconditioner must build against a model problem,
# serialize to its compact string form, and round-trip back to the
# identical spec (and through the dict form).
python - <<'PY'
from repro.linalg.matgen import poisson_2d
from repro.precond import PrecondSpec, default_precond_registry

matrix = poisson_2d(6)
for entry in default_precond_registry():
    built = entry.build(matrix)
    assert (built is None) == (entry.spec.kind == "none"), entry.name
    roundtrip = PrecondSpec.parse(entry.spec.to_string())
    assert roundtrip == entry.spec, (entry.name, roundtrip, entry.spec)
    assert PrecondSpec.from_dict(entry.spec.to_dict()) == entry.spec, entry.name
print(f"preconditioner registry OK "
      f"({len(default_precond_registry())} preconditioners build and round-trip)")
PY

echo
echo "== documentation link check =="
# Fail on dangling relative links in any tracked *.md file.  External
# (http/https/mailto) links and pure #anchors are skipped; relative
# targets must exist on disk (anchors on relative targets are checked
# for file existence only).
python - <<'PY'
import pathlib
import re
import sys

# Match every "](target)" rather than whole "[text](target)" links:
# link text may itself contain brackets (badges, "[![CI](img)](url)"),
# and a checker that skips those would wave dangling targets through.
LINK_RE = re.compile(r"\]\(([^)\s]+)\)")
root = pathlib.Path(".")
broken = []
for path in sorted(root.rglob("*.md")):
    if any(part.startswith(".") or part == "node_modules" for part in path.parts):
        continue
    for match in LINK_RE.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(f"{path}: dangling link -> {target}")
if broken:
    print("\n".join(broken), file=sys.stderr)
    sys.exit(1)
print("doc links OK (no dangling relative links in *.md)")
PY

echo
echo "== engine parity + registry contract suite, second pass =="
if [[ "$FAST" == "1" ]]; then
    echo "(skipped: --fast)"
else
    # Ran once inside the tier-1 suite; a fresh interpreter proves the
    # bitwise parity fixtures and the SolveResult contract hold
    # deterministically twice in a row.
    python -m pytest tests/test_engine_parity.py tests/test_solver_registry.py -q
fi

echo
echo "== golden regression suite, second pass (determinism) =="
if [[ "$FAST" == "1" ]]; then
    echo "(skipped: --fast)"
else
    # The goldens already ran once inside the tier-1 suite; a second
    # invocation in a fresh interpreter proves they pass
    # deterministically twice in a row.
    python -m pytest tests/test_goldens.py -q
fi

echo
echo "== smoke campaign (fresh store) =="
STORE="$(mktemp -t repro_smoke_XXXXXX.jsonl)"
trap 'rm -f "$STORE"' EXIT
rm -f "$STORE"
python -m repro.campaign run --smoke --workers 2 --store "$STORE"

echo
echo "== smoke campaign re-run (must be fully cached) =="
rerun_output="$(python -m repro.campaign run --smoke --workers 2 --store "$STORE")"
echo "$rerun_output" | tail -2
if ! grep -q " 0 ran, " <<<"$rerun_output"; then
    echo "ERROR: re-run executed scenarios; the store failed to memoize" >&2
    exit 1
fi

echo
echo "== precond campaign (fresh store) =="
PRECOND_STORE="$(mktemp -t repro_precond_XXXXXX.jsonl)"
trap 'rm -f "$STORE" "$PRECOND_STORE"' EXIT
rm -f "$PRECOND_STORE"
python -m repro.campaign run precond --workers 2 --store "$PRECOND_STORE"

echo
echo "== precond campaign re-run (must be fully cached) =="
precond_rerun="$(python -m repro.campaign run precond --workers 2 --store "$PRECOND_STORE")"
echo "$precond_rerun" | tail -2
if ! grep -q " 0 ran, " <<<"$precond_rerun"; then
    echo "ERROR: precond re-run executed scenarios; the store failed to memoize" >&2
    exit 1
fi

echo
python -m repro.campaign report --store "$STORE"
echo
echo "verify: OK"
