#!/usr/bin/env bash
# CI gate: tier-1 tests + registry self-checks (solver / fault /
# preconditioner / precision / communicator-backend / analysis-rule
# axes) + backend conformance gate + sim-vs-shmem differential
# + fp64-parity gate
# + static-analysis gate (repro.analysis, includes the doc-link rule)
# + golden determinism + smoke, precond and precision campaigns with
# memoization re-runs + the chaos gate
# (smoke campaign under worker_crash chaos must reproduce the clean
# store byte for byte) + the batch-parity gate (the replicas campaign
# run in lockstep batches must reproduce the sequential store byte for
# byte).
#
#   scripts/verify.sh            # everything (~2 min)
#   scripts/verify.sh --fast     # skip the second golden pass
#
# Exits non-zero on the first failure.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== solver registry self-check =="
listing="$(python -m repro.campaign list)"
grep -q "registered solvers" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the solver axis" >&2
    exit 1
}
for solver in gmres fgmres pipelined_gmres cg pipelined_cg ft_gmres sdc_gmres; do
    # Anchored: the solver table renders one row per solver with the
    # name in the first column, so a bare substring match ('gmres' via
    # 'fgmres') must not count.
    grep -qE "^$solver " <<<"$listing" || {
        echo "ERROR: solver '$solver' missing from the registry listing" >&2
        exit 1
    }
done
python -m repro.campaign list --campaign solvers > /dev/null
echo "registry OK (7 solvers, 'solvers' campaign expands)"

echo
echo "== reliability registry self-check =="
grep -q "registered fault models" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the fault axis" >&2
    exit 1
}
for model in none bitflip bitflip_mantissa bitflip_exponent basis_bitflip \
             sdc_value msg_corrupt proc_fail proc_fail_weibull; do
    grep -qE "^$model " <<<"$listing" || {
        echo "ERROR: fault model '$model' missing from the registry listing" >&2
        exit 1
    }
done
# Every named fault model must instantiate, serialize to its compact
# string form, and round-trip back to the identical spec.
python - <<'PY'
from repro.reliability.registry import default_fault_registry
from repro.reliability.spec import FaultSpec

for entry in default_fault_registry():
    model = entry.build()
    text = model.describe()
    roundtrip = FaultSpec.parse(text)
    assert roundtrip == entry.spec, (entry.name, text, roundtrip, entry.spec)
    assert FaultSpec.from_dict(entry.spec.to_dict()) == entry.spec, entry.name
print(f"reliability registry OK ({len(default_fault_registry())} fault models round-trip)")
PY

echo
echo "== preconditioner registry self-check =="
grep -q "registered preconditioners" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the preconditioner axis" >&2
    exit 1
}
for entry in none jacobi ssor ssor_over poly2 poly4 bjacobi8; do
    grep -qE "^$entry " <<<"$listing" || {
        echo "ERROR: preconditioner '$entry' missing from the registry listing" >&2
        exit 1
    }
done
python -m repro.campaign list --campaign precond > /dev/null
# Every named preconditioner must build against a model problem,
# serialize to its compact string form, and round-trip back to the
# identical spec (and through the dict form).
python - <<'PY'
from repro.linalg.matgen import poisson_2d
from repro.precond import PrecondSpec, default_precond_registry

matrix = poisson_2d(6)
for entry in default_precond_registry():
    built = entry.build(matrix)
    assert (built is None) == (entry.spec.kind == "none"), entry.name
    roundtrip = PrecondSpec.parse(entry.spec.to_string())
    assert roundtrip == entry.spec, (entry.name, roundtrip, entry.spec)
    assert PrecondSpec.from_dict(entry.spec.to_dict()) == entry.spec, entry.name
print(f"preconditioner registry OK "
      f"({len(default_precond_registry())} preconditioners build and round-trip)")
PY

echo
echo "== precision registry self-check =="
grep -q "registered precisions" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the precision axis" >&2
    exit 1
}
for entry in fp64 fp32 fp32_fp16; do
    grep -qE "^$entry " <<<"$listing" || {
        echo "ERROR: precision '$entry' missing from the registry listing" >&2
        exit 1
    }
done
python -m repro.campaign list --campaign precision > /dev/null
# Every named precision must round-trip through its compact string and
# dict forms and resolve to a consistent dtype pair.
python - <<'PY'
import numpy as np
from repro.reliability.precision import (
    PrecisionSpec,
    default_precision_registry,
    parse_precision,
)

for entry in default_precision_registry():
    spec = entry.spec
    assert PrecisionSpec.parse(spec.to_string()) == spec, entry.name
    assert PrecisionSpec.from_dict(spec.to_dict()) == spec, entry.name
    assert parse_precision(entry.name) == spec, entry.name
    assert spec.storage_dtype.itemsize <= spec.compute_dtype.itemsize, entry.name
print(f"precision registry OK "
      f"({len(default_precision_registry())} precisions round-trip)")
PY

echo
echo "== communicator backend registry self-check =="
grep -q "registered communicator backends" <<<"$listing" || {
    echo "ERROR: 'campaign list' does not include the backend axis" >&2
    exit 1
}
for entry in sim shmem mpi4py; do
    grep -qE "^$entry " <<<"$listing" || {
        echo "ERROR: communicator backend '$entry' missing from the registry listing" >&2
        exit 1
    }
done
# Every registered backend spec must round-trip through its compact
# string and dict forms; sim and shmem must be runnable everywhere
# (mpi4py may be gated); sim stays the default and both runnable
# backends promise ordered reductions (the bit-identity contract the
# conformance suite's differential gate leans on).
python - <<'PY'
from repro.comm import CommSpec, backend_names, default_backend_registry, resolve_backend

registry = default_backend_registry()
for name in backend_names():
    entry = registry.get(name)
    spec = CommSpec.parse(f"{name}:procs=4")
    assert CommSpec.parse(spec.to_string()) == spec, name
    assert CommSpec.from_dict(spec.to_dict()) == spec, name
for name in ("sim", "shmem"):
    ok, reason = registry.get(name).available()
    assert ok, (name, reason)
    assert registry.get(name).ordered_reduction, name
assert resolve_backend(None).name == "sim"
print(f"backend registry OK ({len(registry)} backends round-trip; sim is default)")
PY

echo
echo "== backend conformance gate (fresh interpreter) =="
if [[ "$FAST" == "1" ]]; then
    echo "(skipped: --fast)"
else
    # Ran once inside the tier-1 suite; a fresh interpreter proves the
    # cross-backend contract (p2p ordering, collectives, deadlock
    # timeouts, fault observability) holds deterministically twice in
    # a row -- including the real-process shmem backend, whose forked
    # ranks and shared-memory segments must leave no residue between
    # runs.
    python -m pytest tests/test_comm_conformance.py -q
fi

echo
echo "== sim-vs-shmem smoke differential =="
# The E3 CG anchor, distributed over real OS processes, must reproduce
# the simulated backend's residual history bit for bit: both backends
# reduce collective contributions in ascending-rank order, so this is
# exact equality, not a tolerance check.
python - <<'PY'
from repro.experiments import backend_probe

histories = {
    backend: backend_probe.distributed_solve(
        f"{backend}:procs=4", "cg", grid=8, tol=1e-8, seed=2013
    )
    for backend in ("sim", "shmem")
}
sim, shmem = histories["sim"], histories["shmem"]
assert sim["iterations"] == shmem["iterations"], (sim, shmem)
assert sim["converged"] and shmem["converged"]
assert sim["residual_norms"] == shmem["residual_norms"], "histories diverged"
print(f"sim-vs-shmem differential OK "
      f"(CG anchor: {sim['iterations']} iterations, "
      f"{len(sim['residual_norms'])} residual norms bit-identical)")
PY

echo
echo "== fp64-parity gate (precision='fp64' is the default path) =="
# Every registered solver, run with an explicit precision="fp64", must
# reproduce the default path bit for bit -- the contract that keeps
# every pre-E10 golden byte-identical while the precision axis exists.
python - <<'PY'
import numpy as np
from repro.krylov import default_solver_registry
from repro.linalg import poisson_2d

matrix = poisson_2d(8)
rng = np.random.default_rng(17)
b = rng.standard_normal(matrix.n_rows)
for solver in default_solver_registry():
    params = (
        {"tol": 1e-8, "outer_maxiter": 30, "inner_maxiter": 10}
        if solver.name == "ft_gmres" else {"tol": 1e-8, "maxiter": 400}
    )
    default = solver.solve(matrix, b, **params)
    explicit = solver.solve(matrix, b, precision="fp64", **params)
    assert np.array_equal(np.asarray(default.x), np.asarray(explicit.x)), solver.name
    assert default.residual_norms == explicit.residual_norms, solver.name
    assert "precision" not in default.info, solver.name
    assert explicit.info["precision"] == "fp64", solver.name
print(f"fp64-parity gate OK "
      f"({len(default_solver_registry())} solvers bit-identical)")
PY

echo
echo "== analysis registry self-check =="
analysis_listing="$(python -m repro.analysis list)"
grep -q "registered analysis rules" <<<"$analysis_listing" || {
    echo "ERROR: 'repro.analysis list' does not render the rule table" >&2
    exit 1
}
for rule in determinism spec-strings driver-contract dtype-flow \
            process-safety doc-links deprecated-import; do
    grep -qE "^$rule " <<<"$analysis_listing" || {
        echo "ERROR: analysis rule '$rule' missing from the registry listing" >&2
        exit 1
    }
done
echo "analysis registry OK (7 rules registered)"

echo
echo "== static-analysis gate =="
# The whole ruleset over the source tree and the test suite (the
# doc-links rule additionally sweeps every tracked *.md): any finding
# that is neither suppressed inline with a justified
# '# repro: allow(<rule-id>)' nor recorded in
# scripts/analysis_baseline.json fails the build.  The pass is pure
# AST + registry lookups, so it must also stay fast: >10s means an
# analyzer started executing real work.
ANALYSIS_START="$(date +%s)"
python -m repro.analysis run src/repro tests
ANALYSIS_ELAPSED="$(( $(date +%s) - ANALYSIS_START ))"
if (( ANALYSIS_ELAPSED > 10 )); then
    echo "ERROR: analysis pass took ${ANALYSIS_ELAPSED}s (budget: 10s)" >&2
    exit 1
fi

echo
echo "== engine parity + registry contract suite, second pass =="
if [[ "$FAST" == "1" ]]; then
    echo "(skipped: --fast)"
else
    # Ran once inside the tier-1 suite; a fresh interpreter proves the
    # bitwise parity fixtures and the SolveResult contract hold
    # deterministically twice in a row.
    python -m pytest tests/test_engine_parity.py tests/test_solver_registry.py -q
fi

echo
echo "== golden regression suite, second pass (determinism) =="
if [[ "$FAST" == "1" ]]; then
    echo "(skipped: --fast)"
else
    # The goldens already ran once inside the tier-1 suite; a second
    # invocation in a fresh interpreter proves they pass
    # deterministically twice in a row.
    python -m pytest tests/test_goldens.py -q
fi

echo
echo "== smoke campaign (fresh store) =="
STORE="$(mktemp -t repro_smoke_XXXXXX.jsonl)"
trap 'rm -f "$STORE" "${STORE%.jsonl}.ledger.jsonl"' EXIT
rm -f "$STORE"
python -m repro.campaign run --smoke --workers 2 --store "$STORE"

echo
echo "== smoke campaign re-run (must be fully cached) =="
rerun_output="$(python -m repro.campaign run --smoke --workers 2 --store "$STORE")"
echo "$rerun_output" | tail -2
if ! grep -q " 0 ran, " <<<"$rerun_output"; then
    echo "ERROR: re-run executed scenarios; the store failed to memoize" >&2
    exit 1
fi

echo
echo "== chaos smoke gate (crashing workers must not change results) =="
# The same smoke campaign, re-executed from scratch while ~30% of the
# attempts hard-kill their own worker and ~10% hang past the deadline.
# The supervised runner must retry every scenario to completion, and
# the resulting store must match the clean run's keys and result
# payloads byte for byte -- resilience may cost retries, never answers.
# (Chaos draws are pure functions of the base seed and scenario keys,
# so this gate's fault pattern -- and its wall time -- is the same on
# every run.)
CHAOS_STORE="$(mktemp -t repro_chaos_XXXXXX.jsonl)"
trap 'rm -f "$STORE" "${STORE%.jsonl}.ledger.jsonl" \
           "$CHAOS_STORE" "${CHAOS_STORE%.jsonl}.ledger.jsonl"' EXIT
rm -f "$CHAOS_STORE"
python -m repro.campaign run --smoke --workers 2 --store "$CHAOS_STORE" \
    --timeout 10 --retries 10 \
    --chaos "worker_crash:p=0.3+worker_hang:p=0.1,seconds=60"
python - "$STORE" "$CHAOS_STORE" <<'PY'
import sys
from repro.campaign.spec import canonical_json
from repro.campaign.store import ResultStore

def strip_wall_clock(value):
    # kernel_seconds entries are wall-clock measurements -- the one
    # part of a result that legitimately differs between two runs of
    # the same scenario (the goldens exclude them for the same reason).
    if isinstance(value, dict):
        return {k: strip_wall_clock(v) for k, v in value.items()
                if k != "kernel_seconds"}
    if isinstance(value, list):
        return [strip_wall_clock(v) for v in value]
    return value

clean, chaotic = (
    {r.key: canonical_json(strip_wall_clock(r.result))
     for r in ResultStore(path).records()}
    for path in sys.argv[1:3]
)
assert set(clean) == set(chaotic), (
    f"chaos run stored different scenarios: "
    f"only-clean={sorted(set(clean) - set(chaotic))} "
    f"only-chaos={sorted(set(chaotic) - set(clean))}"
)
mismatched = [k for k in clean if clean[k] != chaotic[k]]
assert not mismatched, f"chaos run changed result payloads: {mismatched}"
print(f"chaos gate OK ({len(clean)} scenarios byte-identical under worker_crash:p=0.3)")
PY

echo
echo "== batch-parity gate (lockstep batches must not change results) =="
# Engine-level differential matrix first (fast, pinpoints the layer on
# failure) ...
python scripts/check_batch_parity.py
# ... then end to end: the replicas campaign -- seed-replica sweeps
# over E1/E8/E9, the shape batch mode groups -- run scenario-at-a-time
# and in lockstep batches through the supervised executor.  The two
# stores must hold the same keys with byte-identical result payloads
# (wall-clock kernel seconds excluded, as in the chaos gate).
SEQ_STORE="$(mktemp -t repro_batchseq_XXXXXX.jsonl)"
BATCH_STORE="$(mktemp -t repro_batch_XXXXXX.jsonl)"
trap 'rm -f "$STORE" "${STORE%.jsonl}.ledger.jsonl" \
           "$CHAOS_STORE" "${CHAOS_STORE%.jsonl}.ledger.jsonl" \
           "$SEQ_STORE" "${SEQ_STORE%.jsonl}.ledger.jsonl" \
           "$BATCH_STORE" "${BATCH_STORE%.jsonl}.ledger.jsonl"' EXIT
rm -f "$SEQ_STORE" "$BATCH_STORE"
python -m repro.campaign run replicas --workers 2 --store "$SEQ_STORE"
python -m repro.campaign run replicas --workers 2 --store "$BATCH_STORE" --batch 0
python - "$SEQ_STORE" "$BATCH_STORE" <<'PY'
import sys
from repro.campaign.spec import canonical_json
from repro.campaign.store import ResultStore

def strip_wall_clock(value):
    if isinstance(value, dict):
        return {k: strip_wall_clock(v) for k, v in value.items()
                if k != "kernel_seconds"}
    if isinstance(value, list):
        return [strip_wall_clock(v) for v in value]
    return value

sequential, batched = (
    {r.key: canonical_json(strip_wall_clock(r.result))
     for r in ResultStore(path).records()}
    for path in sys.argv[1:3]
)
assert set(sequential) == set(batched), (
    f"batched run stored different scenarios: "
    f"only-seq={sorted(set(sequential) - set(batched))} "
    f"only-batch={sorted(set(batched) - set(sequential))}"
)
mismatched = [k for k in sequential if sequential[k] != batched[k]]
assert not mismatched, f"batched run changed result payloads: {mismatched}"
print(f"batch-parity gate OK ({len(sequential)} scenarios byte-identical "
      f"under --batch 0)")
PY

echo
echo "== precond campaign (fresh store) =="
PRECOND_STORE="$(mktemp -t repro_precond_XXXXXX.jsonl)"
trap 'rm -f "$STORE" "${STORE%.jsonl}.ledger.jsonl" \
           "$CHAOS_STORE" "${CHAOS_STORE%.jsonl}.ledger.jsonl" \
           "$SEQ_STORE" "${SEQ_STORE%.jsonl}.ledger.jsonl" \
           "$BATCH_STORE" "${BATCH_STORE%.jsonl}.ledger.jsonl" \
           "$PRECOND_STORE" "${PRECOND_STORE%.jsonl}.ledger.jsonl"' EXIT
rm -f "$PRECOND_STORE"
python -m repro.campaign run precond --workers 2 --store "$PRECOND_STORE"

echo
echo "== precond campaign re-run (must be fully cached) =="
precond_rerun="$(python -m repro.campaign run precond --workers 2 --store "$PRECOND_STORE")"
echo "$precond_rerun" | tail -2
if ! grep -q " 0 ran, " <<<"$precond_rerun"; then
    echo "ERROR: precond re-run executed scenarios; the store failed to memoize" >&2
    exit 1
fi

echo
echo "== precision campaign (fresh store) =="
PRECISION_STORE="$(mktemp -t repro_precision_XXXXXX.jsonl)"
trap 'rm -f "$STORE" "${STORE%.jsonl}.ledger.jsonl" \
           "$CHAOS_STORE" "${CHAOS_STORE%.jsonl}.ledger.jsonl" \
           "$SEQ_STORE" "${SEQ_STORE%.jsonl}.ledger.jsonl" \
           "$BATCH_STORE" "${BATCH_STORE%.jsonl}.ledger.jsonl" \
           "$PRECOND_STORE" "${PRECOND_STORE%.jsonl}.ledger.jsonl" \
           "$PRECISION_STORE" "${PRECISION_STORE%.jsonl}.ledger.jsonl"' EXIT
rm -f "$PRECISION_STORE"
python -m repro.campaign run precision --workers 2 --store "$PRECISION_STORE"

echo
echo "== precision campaign re-run (must be fully cached) =="
precision_rerun="$(python -m repro.campaign run precision --workers 2 --store "$PRECISION_STORE")"
echo "$precision_rerun" | tail -2
if ! grep -q " 0 ran, " <<<"$precision_rerun"; then
    echo "ERROR: precision re-run executed scenarios; the store failed to memoize" >&2
    exit 1
fi

echo
python -m repro.campaign report --store "$STORE"
echo
echo "verify: OK"
