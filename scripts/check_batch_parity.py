#!/usr/bin/env python
"""Quick batched-vs-sequential parity gate (development aid).

Runs the engine-level differential matrix -- every batchable solver x
policy x preconditioner combination plus fault hooks and divergent
tolerances -- and asserts bit-identity of iterates, residual histories
and kernel call counts.  The full pinned matrix lives in
``tests/test_batch_parity.py``; this script is the fast pre-commit
smoke used by ``scripts/verify.sh``.
"""
import sys

import numpy as np

from repro.linalg.matgen import poisson_2d
from repro.krylov import batch_solve
from repro.krylov.registry import default_solver_registry
from repro.reliability.spec import FaultSpec
from repro.reliability.models import BasisBitflipFaults

reg = default_solver_registry()
A = poisson_2d(16)
n = A.shape[0]
failures = []


def compare(name, results, seq_results):
    assert len(results) == len(seq_results)
    for k, (r, s) in enumerate(zip(results, seq_results)):
        try:
            assert r.x.tobytes() == s.x.tobytes(), "iterate bytes differ"
            assert r.residual_norms == s.residual_norms, "residual history differs"
            assert r.iterations == s.iterations, "iteration count differs"
            assert r.converged == s.converged and r.breakdown == s.breakdown
            ik = {a: b for a, b in r.info.items() if a != "kernels"}
            sk = {a: b for a, b in s.info.items() if a != "kernels"}
            assert ik == sk, f"info differs: {ik} != {sk}"
            assert (
                r.info["kernels"]["counts"] == s.info["kernels"]["counts"]
            ), "kernel call counts differ"
        except AssertionError as exc:
            failures.append(f"{name}[{k}]: {exc}")
            print(f"FAIL {name}[{k}]: {exc}")
            return
    print(f"ok {name}")


model = BasisBitflipFaults(FaultSpec("basis_bitflip", {"bits": (30, 55)}))


def hook(seed):
    h, _info = model.iteration_hook(np.random.default_rng(seed), at=5)
    return h


bs = [np.random.default_rng(100 + i).standard_normal(n) for i in range(6)]
compare(
    "gmres",
    batch_solve("gmres", A, bs, tol=1e-8, restart=30, maxiter=600),
    [reg.get("gmres").solve(A, b, tol=1e-8, restart=30, maxiter=600) for b in bs],
)

bs2 = [np.random.default_rng(50 + i).standard_normal(n) for i in range(4)]
compare(
    "sdc_gmres+faults",
    batch_solve(
        "sdc_gmres", A, bs2, policy="skeptical_restart", tol=1e-8, restart=30,
        maxiter=600, check_period=1,
        lane_params=[{"fault_hook": hook(7 + i)} for i in range(4)],
    ),
    [
        reg.get("sdc_gmres").solve(
            A, b, policy="skeptical_restart", tol=1e-8, restart=30,
            maxiter=600, check_period=1,
            policy_options={"fault_hook": hook(7 + i)},
        )
        for i, b in enumerate(bs2)
    ],
)

bs3 = [np.random.default_rng(900 + i).standard_normal(n) for i in range(5)]
for name, solver, kw in [
    ("gmres+jacobi nonconverging", "gmres",
     dict(tol=1e-14, restart=20, maxiter=40, precond="jacobi")),
    ("gmres+residual_guard", "gmres",
     dict(tol=1e-8, restart=25, maxiter=500, policy="residual_guard")),
    ("gmres classical GS", "gmres",
     dict(tol=1e-8, restart=30, maxiter=600, gram_schmidt="classical")),
    ("cg+jacobi", "cg", dict(tol=1e-10, maxiter=400, precond="jacobi")),
    ("cg+residual_guard", "cg", dict(tol=1e-10, maxiter=400, policy="residual_guard")),
]:
    compare(
        name,
        batch_solve(solver, A, bs3, **kw),
        [reg.get(solver).solve(A, b, **kw) for b in bs3],
    )

# Mid-batch divergence: mixed per-lane tolerances force staggered exits.
lane_params = [{"tol": [1e-4, 1e-6, 1e-8, 1e-10, 1e-12][i % 5]} for i in range(10)]
bs4 = [np.random.default_rng(40 + i).standard_normal(n) for i in range(10)]
compare(
    "gmres mixed tolerances",
    batch_solve("gmres", A, bs4, restart=30, maxiter=600, lane_params=lane_params),
    [
        reg.get("gmres").solve(A, b, restart=30, maxiter=600, **lane_params[i])
        for i, b in enumerate(bs4)
    ],
)
compare(
    "sdc mixed tolerances",
    batch_solve(
        "sdc_gmres", A, bs4, policy="skeptical_restart", restart=30,
        maxiter=600, check_period=1, lane_params=lane_params,
    ),
    [
        reg.get("sdc_gmres").solve(
            A, b, policy="skeptical_restart", restart=30, maxiter=600,
            check_period=1, **lane_params[i],
        )
        for i, b in enumerate(bs4)
    ],
)

if failures:
    print(f"{len(failures)} parity failure(s)")
    sys.exit(1)
print("all parity checks passed")
