"""Shared configuration for the benchmark harness.

Each ``bench_e*.py`` module regenerates one experiment of EXPERIMENTS.md
(in a configuration small enough to run in seconds) under
pytest-benchmark, prints the reproduced table, and attaches the headline
numbers to the benchmark's ``extra_info`` so they appear in the saved
benchmark JSON.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import warnings

import pytest


@pytest.fixture(autouse=True)
def _silence_overflow_warnings():
    """Fault-injection benchmarks intentionally create overflows; keep the
    output readable."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


def report(result) -> None:
    """Print an experiment result table under the benchmark output."""
    print()
    print(result.render())
