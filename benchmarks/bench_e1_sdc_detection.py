"""Benchmark/regeneration harness for experiment E1 (SDC detection in GMRES).

Paper anchor: §II-A / §III-A -- cheap invariant checks inside the
Arnoldi process detect silent bit flips and let GMRES recover by
restarting, at low cost.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e1_sdc_detection


def test_e1_sdc_detection(benchmark):
    """Regenerate the E1 table (reduced trial count for benchmarking)."""
    result = benchmark.pedantic(
        lambda: e1_sdc_detection.run(grid=16, n_trials=8, inject_at=8),
        rounds=1, iterations=1,
    )
    report(result)
    rows = result.table.to_dicts()
    skeptical_severe = [
        r for r in rows
        if r["solver"] == "skeptical" and r["bit_class"] in ("exponent", "sign")
    ]
    # The qualitative claim: no silent data corruption or crashes survive
    # the skeptical solver for severe (exponent/sign) flips.
    assert all(r["sdc"] == 0.0 and r["crash"] == 0.0 for r in skeptical_severe)
    benchmark.extra_info["exponent_detection_rate"] = result.summary[
        "exponent_skeptical_detection_rate"
    ]
