"""Benchmark/regeneration harness for experiment E9 (preconditioners).

The selective-reliability demonstration: every default solver x every
registered preconditioner with exponent-bit flips routed into the
unreliable domain wrapping ``M^{-1} v``.  Exercises the whole
preconditioner registry (spec parsing, builders, the domain proxy and
the solvers' ``precond=`` wiring) in a single run.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e9_precond


def test_e9_precond_matrix(benchmark):
    """Regenerate the E9 table."""
    result = benchmark.pedantic(
        lambda: e9_precond.run(
            grid=8,
            preconds=("none", "jacobi", "ssor", "poly2", "bjacobi8"),
            faults="bitflip:p=0.05,bits=52..62",
            seed=2013,
        ),
        rounds=1, iterations=1,
    )
    report(result)
    assert result.summary["n_preconds"] == 5
    assert result.summary["n_silent_corruptions"] == 0
    benchmark.extra_info["n_correct"] = result.summary["n_correct"]
    benchmark.extra_info["total_faults_injected"] = result.summary[
        "total_faults_injected"
    ]
