"""Benchmark/regeneration harness for experiment E7 (efficiency at scale).

Paper anchor: §I / §IV -- the efficiency of global checkpoint/restart
collapses as machines grow while local-recovery efficiency stays near
its redundancy overhead, extending viability to cheaper, less reliable
systems.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e7_efficiency


def test_e7_efficiency(benchmark):
    """Regenerate the E7 tables."""
    result = benchmark.pedantic(
        lambda: e7_efficiency.run(
            node_counts=(1_000, 10_000, 100_000, 1_000_000)
        ),
        rounds=1, iterations=1,
    )
    report(result)
    print(result.summary["sweep_table"])
    assert result.summary["lflr_eff_1000000"] > result.summary["cpr_eff_1000000"]
    assert result.summary["cpr_eff_1000"] > result.summary["cpr_eff_1000000"]
    benchmark.extra_info["lflr_eff_at_1M_nodes"] = result.summary["lflr_eff_1000000"]
    benchmark.extra_info["cpr_eff_at_1M_nodes"] = result.summary["cpr_eff_1000000"]
