"""Benchmark/regeneration harness for experiment E3 (pipelined Krylov scaling).

Paper anchor: §II-B / §III-B -- synchronous collectives plus performance
variability limit scalability; pipelined (asynchronous-collective)
Krylov methods hide the latency and restore it.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e3_pipelined


def test_e3_pipelined_scaling(benchmark):
    """Regenerate the E3 weak-scaling table."""
    result = benchmark.pedantic(
        lambda: e3_pipelined.run(
            grid=16, rank_counts=(16, 256, 4096, 65536, 1048576)
        ),
        rounds=1, iterations=1,
    )
    report(result)
    print(result.summary["anchor_table"])
    speedups = result.table.column("speedup")
    assert all(s >= 1.0 for s in speedups)
    assert speedups[-1] > 1.5
    benchmark.extra_info["speedup_at_1M_ranks"] = speedups[-1]
