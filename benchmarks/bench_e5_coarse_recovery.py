"""Benchmark/regeneration harness for experiment E5 (coarse-model recovery).

Paper anchor: §III-C -- implicit-method state lost with a failed rank can
be rebuilt from a redundantly stored coarse model accurately enough to
bootstrap recovery.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e5_coarse_recovery


def test_e5_coarse_recovery(benchmark):
    """Regenerate the E5 table."""
    result = benchmark.pedantic(
        lambda: e5_coarse_recovery.run(
            n_points=128, coarsening_factors=(2, 4, 8)
        ),
        rounds=1, iterations=1,
    )
    report(result)
    summary = result.summary
    assert summary["coarse_4_error"] < summary["zero_bootstrap_error"]
    assert summary["coarse_4_extra_iters"] <= summary["zero_bootstrap_extra_iters"]
    benchmark.extra_info["coarse_4_error"] = summary["coarse_4_error"]
