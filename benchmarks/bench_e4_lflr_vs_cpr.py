"""Benchmark/regeneration harness for experiment E4 (LFLR vs global CPR).

Paper anchor: §I / §II-C / §III-C -- explicit PDE time stepping recovers
locally from process loss with the right answer and at a per-failure
cost far below a global checkpoint/restart.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e4_lflr_vs_cpr


def test_e4_lflr_vs_cpr(benchmark):
    """Regenerate the E4 table."""
    result = benchmark.pedantic(
        lambda: e4_lflr_vs_cpr.run(
            n_ranks=4, n_global=48, n_steps=30, failure_counts=(0, 1, 2)
        ),
        rounds=1, iterations=1,
    )
    report(result)
    rows = {row["n_failures"]: row for row in result.table.to_dicts()}
    assert all(row["lflr_correct"] for row in rows.values())
    assert rows[1]["overhead_ratio"] > 1.0
    benchmark.extra_info["overhead_ratio_one_failure"] = rows[1]["overhead_ratio"]
