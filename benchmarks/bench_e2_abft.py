"""Benchmark/regeneration harness for experiment E2 (checksum ABFT).

Paper anchor: §III-A -- ABFT checksum metadata detects anomalous results
of matrix operations and corrects single errors at negligible cost.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e2_abft


def test_e2_abft(benchmark):
    """Regenerate the E2 table."""
    result = benchmark.pedantic(
        lambda: e2_abft.run(sizes=(16, 32, 64), n_trials=20),
        rounds=1, iterations=1,
    )
    report(result)
    for row in result.table.to_dicts():
        assert row["false_positive_rate"] == 0.0
        assert row["detection_rate"] >= 0.5
    benchmark.extra_info["matmul_64_detection"] = result.summary.get("matmul_64_detection")
