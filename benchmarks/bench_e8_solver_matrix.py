"""Benchmark/regeneration harness for experiment E8 (solver matrix).

The unified-engine demonstration: every registered solver, resolved by
name, under one resilience-policy setting and one fault schedule.
Exercises the whole registry in a single run, so regressions in any
engine strategy combination show up here.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e8_solvers


def test_e8_solver_matrix(benchmark):
    """Regenerate the E8 table."""
    result = benchmark.pedantic(
        lambda: e8_solvers.run(
            grid=8, policy="skeptical", fault_probability=0.02,
            bit_range=(52, 62), seed=2013,
        ),
        rounds=1, iterations=1,
    )
    report(result)
    assert result.summary["n_solvers"] >= 6
    assert result.summary["n_silent_corruptions"] == 0
    benchmark.extra_info["n_correct"] = result.summary["n_correct"]
    benchmark.extra_info["total_faults_injected"] = result.summary[
        "total_faults_injected"
    ]
