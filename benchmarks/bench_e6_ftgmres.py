"""Benchmark/regeneration harness for experiment E6 (FT-GMRES).

Paper anchor: §II-D / §III-D -- a reliable outer iteration around an
unreliable inner GMRES keeps the solver robust while most data and work
run at the bulk (unreliable) level.
"""

from __future__ import annotations

from conftest import report

from repro.experiments import e6_ftgmres


def test_e6_ftgmres(benchmark):
    """Regenerate the E6 table."""
    result = benchmark.pedantic(
        lambda: e6_ftgmres.run(
            grid=12, fault_probabilities=(0.0, 0.05, 0.1), n_trials=3
        ),
        rounds=1, iterations=1,
    )
    report(result)
    assert result.summary["ftgmres_0.1_converged"] == 1.0
    assert result.summary["ftgmres_0.1_unreliable_fraction"] > 0.5
    benchmark.extra_info["unreliable_fraction"] = result.summary[
        "ftgmres_0.1_unreliable_fraction"
    ]
