#!/usr/bin/env python
"""Measure communicator collectives on every runnable backend.

Standalone companion to the ``bench_e*.py`` pytest-benchmark suite
(deliberately outside its collection pattern: these numbers describe
the *communication substrate*, not an experiment table, and real
process launches make poor pytest-benchmark citizens).  For each
registered, available backend it measures per-call latency of barrier,
allreduce and bcast across payload sizes at a fixed rank count, plus
the alpha-beta fit over the allreduce series -- the same probes the E7
driver uses to hold the machine model against a real transport.

Typical uses::

    # print the measurement table
    PYTHONPATH=src python benchmarks/bench_comm.py

    # write machine-readable results next to the PR benchmark JSONs
    PYTHONPATH=src python benchmarks/bench_comm.py \
        --json benchmarks/BENCH_PR10_COMM.json

Wall-clock numbers are machine-dependent by nature; the JSON exists to
document the shape of the transport (latency floor, bandwidth slope,
sim-vs-shmem crossover), not to gate CI on absolute values.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:
    sys.path.insert(0, SRC_DIR)


def measure(procs: int, nbytes_list, iterations: int) -> dict:
    """Collective timings per available backend, plus alpha-beta fits."""
    from repro.comm import default_backend_registry
    from repro.experiments import backend_probe

    results = {}
    for entry in default_backend_registry():
        ok, reason = entry.available()
        if not ok:
            results[entry.name] = {"skipped": reason}
            continue
        timings = backend_probe.measure_collectives(
            f"{entry.name}:procs={procs}",
            nbytes_list=tuple(nbytes_list),
            iterations=iterations,
        )
        alpha, bandwidth, r_squared = backend_probe.alpha_beta_fit(
            sorted(timings["allreduce"]),
            [timings["allreduce"][n] for n in sorted(timings["allreduce"])],
        )
        results[entry.name] = {
            "procs": procs,
            "iterations": iterations,
            "seconds_per_call": timings,
            "allreduce_alpha_beta_fit": {
                "alpha_seconds": alpha,
                "bandwidth_bytes_per_s": bandwidth,
                "r_squared": r_squared,
            },
        }
    return results


def render(results: dict) -> str:
    lines = []
    for backend, data in results.items():
        if "skipped" in data:
            lines.append(f"{backend:8s}  skipped: {data['skipped']}")
            continue
        fit = data["allreduce_alpha_beta_fit"]
        lines.append(
            f"{backend:8s}  procs={data['procs']}  "
            f"allreduce fit: alpha={fit['alpha_seconds']:.2e}s  "
            f"bw={fit['bandwidth_bytes_per_s']:.3g}B/s  r2={fit['r_squared']:.3f}"
        )
        for kind, series in data["seconds_per_call"].items():
            cells = "  ".join(
                f"{int(n):>8d}B={t * 1e6:8.1f}us" for n, t in sorted(series.items())
            )
            lines.append(f"  {kind:10s} {cells}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument(
        "--nbytes", type=int, nargs="+", default=[1024, 65536, 1048576]
    )
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--json", help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = measure(args.procs, args.nbytes, args.iterations)
    print(render(results))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"comm_collectives": results}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
