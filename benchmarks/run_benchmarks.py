#!/usr/bin/env python
"""Run the experiment benchmark suite and (optionally) diff a baseline.

The ``bench_e*.py`` modules do not match pytest's default ``test_*.py``
collection pattern, so they must be passed explicitly -- this script is
the one place that knows the list.  Typical uses::

    # produce a fresh benchmark JSON for this PR
    python benchmarks/run_benchmarks.py --json benchmarks/BENCH_PR1.json

    # same, and compare against the stored seed baseline
    python benchmarks/run_benchmarks.py --json benchmarks/BENCH_PR1.json \
        --baseline benchmarks/BENCH_SEED_BASELINE.json

Exit status is pytest's, or the comparator's if a baseline regression
is detected (see :mod:`benchmarks.compare_benchmarks`).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)

BENCH_MODULES = [
    "bench_e1_sdc_detection.py",
    "bench_e2_abft.py",
    "bench_e3_pipelined_scaling.py",
    "bench_e4_lflr_vs_cpr.py",
    "bench_e5_coarse_recovery.py",
    "bench_e6_ftgmres.py",
    "bench_e7_efficiency.py",
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default=os.path.join(BENCH_DIR, "BENCH_PR1.json"),
        help="where to write the pytest-benchmark JSON",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="stored baseline JSON to diff against after the run",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.25,
        help="passed through to compare_benchmarks.py",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    command = [
        sys.executable,
        "-m",
        "pytest",
        *[os.path.join(BENCH_DIR, module) for module in BENCH_MODULES],
        "--benchmark-only",
        f"--benchmark-json={args.json}",
        "-q",
        *args.pytest_args,
    ]
    status = subprocess.call(command, env=env, cwd=REPO_ROOT)
    if status != 0:
        return status

    if args.baseline:
        sys.path.insert(0, BENCH_DIR)
        from compare_benchmarks import compare

        return compare(args.baseline, args.json, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
