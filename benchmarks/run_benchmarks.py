#!/usr/bin/env python
"""Run the experiment benchmark suite and (optionally) diff a baseline.

The ``bench_e*.py`` modules do not match pytest's default ``test_*.py``
collection pattern, so they must be passed explicitly -- the list is
derived from the campaign registry (one ``bench_e<N>_*.py`` module per
registered experiment), so a new ``e8_*.py`` driver with a matching
benchmark module is picked up automatically.  Typical uses::

    # produce a fresh benchmark JSON for this PR
    python benchmarks/run_benchmarks.py --json benchmarks/BENCH_PR1.json

    # same, and compare against the stored seed baseline
    python benchmarks/run_benchmarks.py --json benchmarks/BENCH_PR1.json \
        --baseline benchmarks/BENCH_SEED_BASELINE.json

    # quick health check: run the smoke campaign instead of pytest-benchmark
    python benchmarks/run_benchmarks.py --smoke

    # batched-vs-sequential campaign benchmark at 128 seed replicas
    python benchmarks/run_benchmarks.py --batch 128 --json benchmarks/BENCH_PR7.json

Exit status is pytest's, or the comparator's if a baseline regression
is detected (see :mod:`benchmarks.compare_benchmarks`).
"""

from __future__ import annotations

import argparse
import glob
import os
import subprocess
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")


def _with_src_on_path() -> None:
    if SRC_DIR not in sys.path:
        sys.path.insert(0, SRC_DIR)


def bench_modules(
    solver: str = None,
    faults: str = None,
    precond: str = None,
    precision: str = None,
) -> list:
    """One benchmark module per registered experiment, in E-number order.

    Modules are matched by prefix (``bench_e3_*.py`` covers E3) so the
    benchmark file name can carry a fuller description than the driver
    module does.  With ``solver``, only the experiments the solver
    registry lists as exercising that solver are kept (so
    ``--solver pipelined_cg`` runs just the E3/E8/E9 benchmarks).  With
    ``faults`` -- a reliability-registry name or compact fault spec --
    only the experiments registered as exercising that fault model are
    kept (so ``--faults proc_fail`` runs just the E4/E5/E7 benchmarks);
    inline specs map through their kind's registry entries.  With
    ``precond`` -- a :mod:`repro.precond` registry name or compact
    preconditioner spec -- only the experiments registered as
    exercising that preconditioner are kept; inline specs map through
    their kind's registry entries.  With ``precision`` -- a
    :mod:`repro.reliability.precision` registry name or compact spec
    like ``"fp32:storage=fp16"`` -- only the experiments registered as
    exercising that precision are kept; inline specs map through their
    kind's registry entries.  Filters intersect.
    """
    _with_src_on_path()
    from repro.campaign.registry import default_registry

    wanted = None
    if solver is not None:
        from repro.krylov.registry import default_solver_registry

        try:
            entry = default_solver_registry().get(solver)
        except KeyError as exc:
            raise SystemExit(str(exc)) from None
        wanted = set(entry.experiments)

    if faults is not None:
        from repro.reliability.registry import (
            default_fault_registry,
            resolve_faults,
        )

        registry = default_fault_registry()
        try:
            if faults in registry:
                fault_experiments = set(registry.get(faults).experiments)
            else:
                # An inline spec: validate it, then take the union of
                # the registry entries matching its component kinds.
                model = resolve_faults(faults)
                kinds = {component.kind for component in model.components()}
                fault_experiments = {
                    experiment
                    for entry in registry
                    if entry.spec.kind in kinds
                    for experiment in entry.experiments
                }
        except (KeyError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        if not fault_experiments:
            raise SystemExit(
                f"fault spec {faults!r} maps to no registered experiments"
            )
        wanted = (
            fault_experiments if wanted is None
            else wanted & fault_experiments
        )

    if precond is not None:
        from repro.precond import default_precond_registry, parse_precond

        registry = default_precond_registry()
        try:
            if precond in registry:
                precond_experiments = set(registry.get(precond).experiments)
            else:
                # An inline spec: validate it, then take the union of
                # the registry entries matching its kind.
                kind = parse_precond(precond).kind
                precond_experiments = {
                    experiment
                    for entry in registry
                    if entry.spec.kind == kind
                    for experiment in entry.experiments
                }
        except (KeyError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        if not precond_experiments:
            raise SystemExit(
                f"preconditioner spec {precond!r} maps to no registered "
                f"experiments"
            )
        wanted = (
            precond_experiments if wanted is None
            else wanted & precond_experiments
        )

    if precision is not None:
        from repro.reliability.precision import (
            default_precision_registry,
            parse_precision,
        )

        registry = default_precision_registry()
        try:
            if precision in registry:
                precision_experiments = set(registry.get(precision).experiments)
            else:
                # An inline spec: validate it, then take the union of
                # the registry entries matching its kind.
                kind = parse_precision(precision).kind
                precision_experiments = {
                    experiment
                    for entry in registry
                    if entry.spec.kind == kind
                    for experiment in entry.experiments
                }
        except (KeyError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        if not precision_experiments:
            raise SystemExit(
                f"precision spec {precision!r} maps to no registered "
                f"experiments"
            )
        wanted = (
            precision_experiments if wanted is None
            else wanted & precision_experiments
        )

    modules = []
    for driver in default_registry():
        if wanted is not None and driver.experiment not in wanted:
            continue
        number = driver.experiment.lower()  # "e3"
        matches = sorted(
            glob.glob(os.path.join(BENCH_DIR, f"bench_{number}_*.py"))
        )
        if not matches:
            raise SystemExit(
                f"no benchmark module bench_{number}_*.py found for "
                f"registered experiment {driver.experiment} -- a silent "
                f"drop here would fake a green baseline comparison"
            )
        modules.extend(os.path.basename(m) for m in matches)
    if not modules:
        raise SystemExit(
            f"filters (solver={solver!r}, faults={faults!r}, "
            f"precond={precond!r}, precision={precision!r}) map to no "
            f"benchmark modules (experiments: {sorted(wanted or ())})"
        )
    return modules


def run_smoke_campaign() -> int:
    """Run the smoke campaign through the campaign machinery (no store)."""
    _with_src_on_path()
    from repro.campaign.builtin import builtin_campaign
    from repro.campaign.runner import CampaignRunner

    outcomes = CampaignRunner(
        workers=2,
        progress=lambda o: print(
            f"[{o.status:>9}] {o.key} {o.scenario.experiment} "
            f"{o.scenario.describe()} ({o.elapsed:.2f}s)"
        ),
    ).run(builtin_campaign("smoke"))
    failed = [o for o in outcomes if o.status == "failed"]
    for outcome in failed:
        print(outcome.error, file=sys.stderr)
    print(f"smoke campaign: {len(outcomes)} scenarios, {len(failed)} failed")
    return 1 if failed else 0


#: Per-experiment bases for the --batch benchmark: seed-replica sweeps
#: over the three batch-capable drivers, sized so the batchable solver
#: fraction dominates (small grid, lockstep-friendly solver sets).
_BATCH_BENCH_SUITES = {
    "E1": {"grid": 8, "n_trials": 2, "inject_at": 4, "check_period": 1},
    "E8": {
        "grid": 8,
        "solvers": ("gmres", "cg", "sdc_gmres"),
        "faults": "bitflip:p=0.02,bits=52..62",
        "policy": "guard",
    },
    "E9": {
        "grid": 8,
        "solvers": ("gmres", "cg"),
        "preconds": ("none", "jacobi"),
        "faults": "bitflip:p=0.05,bits=52..62",
        "target": "precond",
    },
}


def run_batch_benchmark(scale: int, json_path: str) -> int:
    """Benchmark batched vs sequential campaign execution at ``scale`` seeds.

    Runs the same ``scale``-replica scenario list per batch-capable
    experiment (E1/E8/E9) twice through the in-process runner --
    scenario-at-a-time, then ``batch=0`` (one lockstep group) -- and
    writes wall-clock numbers plus the equality verdict to
    ``json_path``.  Exit status is non-zero if any scenario failed or
    the batched results are not identical to the sequential ones: a
    speedup that changes answers is not a speedup.
    """
    _with_src_on_path()
    import json
    import time

    from repro.campaign.runner import CampaignRunner
    from repro.campaign.spec import Scenario, canonical_json

    if scale < 2:
        raise SystemExit("--batch needs at least 2 seed replicas")
    seeds = range(101, 101 + scale)
    report = {"scale": scale, "experiments": {}}
    status = 0
    for experiment, base in _BATCH_BENCH_SUITES.items():
        scenarios = [Scenario(experiment, dict(base, seed=s)) for s in seeds]

        start = time.perf_counter()
        sequential = CampaignRunner().run(scenarios)
        sequential_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched = CampaignRunner(batch=0).run(scenarios)
        batched_seconds = time.perf_counter() - start

        completed = all(
            o.status == "completed" for o in sequential + batched
        )
        identical = completed and all(
            canonical_json(a.result) == canonical_json(b.result)
            for a, b in zip(sequential, batched)
        )
        speedup = sequential_seconds / batched_seconds
        report["experiments"][experiment] = {
            "n_scenarios": len(scenarios),
            "sequential_seconds": round(sequential_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "speedup": round(speedup, 3),
            "all_completed": completed,
            "identical_results": identical,
        }
        print(
            f"{experiment}: S={len(scenarios)} sequential {sequential_seconds:.2f}s "
            f"batched {batched_seconds:.2f}s speedup {speedup:.2f}x "
            f"identical={identical}"
        )
        if not identical:
            status = 1

    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {json_path}")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        default=os.path.join(BENCH_DIR, "BENCH_PR1.json"),
        help="where to write the pytest-benchmark JSON",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="stored baseline JSON to diff against after the run",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.25,
        help="passed through to compare_benchmarks.py",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the smoke campaign (fast health check) instead of "
        "the pytest-benchmark suite",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        metavar="S",
        help="benchmark batched vs sequential campaign execution at S "
        "seed replicas per batch-capable experiment (E1/E8/E9), write "
        "the report to --json and verify result identity, instead of "
        "the pytest-benchmark suite",
    )
    parser.add_argument(
        "--solver",
        default=None,
        help="run only the benchmarks exercising this registered solver "
        "(a repro.krylov.registry name, e.g. 'pipelined_cg'); note that "
        "a filtered run is not comparable against a full baseline",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="run only the benchmarks exercising this fault model "
        "(a repro.reliability registry name, e.g. 'proc_fail', or a "
        "compact spec string like 'bitflip:p=0.02'); combines with "
        "--solver as an intersection; a filtered run is not comparable "
        "against a full baseline",
    )
    parser.add_argument(
        "--precond",
        default=None,
        help="run only the benchmarks exercising this preconditioner "
        "(a repro.precond registry name, e.g. 'bjacobi8', or a compact "
        "spec string like 'ssor:omega=1.2'); combines with --solver and "
        "--faults as an intersection; a filtered run is not comparable "
        "against a full baseline",
    )
    parser.add_argument(
        "--precision",
        default=None,
        help="run only the benchmarks exercising this precision "
        "(a repro.reliability.precision registry name, e.g. 'fp32', or "
        "a compact spec string like 'fp32:storage=fp16'); combines with "
        "--solver, --faults and --precond as an intersection; a "
        "filtered run is not comparable against a full baseline",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (after --)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke_campaign()
    if args.batch is not None:
        return run_batch_benchmark(args.batch, args.json)

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    command = [
        sys.executable,
        "-m",
        "pytest",
        *[os.path.join(BENCH_DIR, module)
          for module in bench_modules(
              args.solver, args.faults, args.precond, args.precision)],
        "--benchmark-only",
        f"--benchmark-json={args.json}",
        "-q",
        *args.pytest_args,
    ]
    status = subprocess.call(command, env=env, cwd=REPO_ROOT)
    if status != 0:
        return status

    if args.baseline:
        sys.path.insert(0, BENCH_DIR)
        from compare_benchmarks import compare

        return compare(args.baseline, args.json, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
