#!/usr/bin/env python
"""Diff headline timings of two pytest-benchmark JSON files.

Usage::

    python benchmarks/compare_benchmarks.py BASELINE.json CURRENT.json \
        [--max-regression 1.25]

Prints a per-benchmark table of mean times and speedup factors
(baseline / current; > 1 is faster than the baseline) and exits
non-zero if any benchmark regressed by more than ``--max-regression``
(default: 25% slower), so the perf trajectory of the repo is enforced,
not just recorded.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_means(path: str) -> Dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark JSON."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        bench["name"]: float(bench["stats"]["mean"])
        for bench in payload.get("benchmarks", [])
    }


def compare(
    baseline_path: str,
    current_path: str,
    max_regression: float,
    min_time: float = 0.005,
) -> int:
    baseline = load_means(baseline_path)
    current = load_means(current_path)
    if not current:
        print(f"no benchmarks found in {current_path}", file=sys.stderr)
        return 2

    width = max(len(name) for name in current)
    header = f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'speedup':>8}"
    print(header)
    print("-" * len(header))
    regressions = []
    for name in sorted(current):
        mean = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'--':>10}  {mean:>9.4f}s  {'new':>8}")
            continue
        speedup = base / mean if mean > 0 else float("inf")
        print(f"{name:<{width}}  {base:>9.4f}s  {mean:>9.4f}s  {speedup:>7.2f}x")
        # Sub-millisecond benchmarks regress by scheduler noise alone;
        # only gate on benchmarks long enough to measure reliably.
        if base >= min_time and mean > base * max_regression:
            regressions.append((name, speedup))
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  {baseline[name]:>9.4f}s  {'--':>10}  {'gone':>8}")

    if regressions:
        print()
        for name, speedup in regressions:
            print(
                f"REGRESSION: {name} is {1.0 / speedup:.2f}x slower than baseline",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="stored baseline benchmark JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.25,
        help="fail if current mean exceeds baseline * this factor (default 1.25)",
    )
    parser.add_argument(
        "--min-time",
        type=float,
        default=0.005,
        help="ignore regressions on benchmarks whose baseline mean is below "
        "this many seconds (default 0.005: too noisy to gate on)",
    )
    args = parser.parse_args(argv)
    return compare(args.baseline, args.current, args.max_regression, args.min_time)


if __name__ == "__main__":
    raise SystemExit(main())
