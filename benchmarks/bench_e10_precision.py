"""Benchmark/regeneration harness for experiment E10 (precision).

Two jobs: regenerate the E10 selective-precision table (every default
solver x precision x preconditioner with exponent-bit flips on the
inner stage) and prove the fp32 claim with kernel microbenchmarks --
the large-n matvec and CGS2 orthogonalization that PERFORMANCE.md
shows dominate every solve must actually run >= 1.5x faster in single
precision, not just produce different dtypes.

The microbenchmark sizes are chosen to be memory-bound: the Poisson
matvec only leaves the cache-resident regime (where the int64 gather
indices dominate traffic and fp32 pays ~nothing) around n = 10^6.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import report

from repro.experiments import e10_precision
from repro.krylov.ops import allocate_basis
from repro.linalg.matgen import poisson_2d
from repro.reliability.precision import cast_operator, parse_precision

#: Speedup floor asserted by the microbenchmarks.  Measured headroom is
#: ~2x for both kernels at these sizes, so 1.5x absorbs machine noise
#: without letting a real regression (e.g. an accidental upcast in the
#: kernel layer) slip through.
_MIN_SPEEDUP = 1.5

#: Matvec size: 1024 x 1024 Poisson grid -> n = 1,048,576 (the
#: bandwidth-bound regime; at n ~ 2.6e5 the same kernel measures ~1.1x).
_MATVEC_GRID = 1024

#: CGS2 size: n = 262,144 with a 30-vector basis -- a (30, n) float
#: block is bandwidth-bound long before the matvec is.
_CGS2_GRID = 512
_CGS2_BASIS = 30


def _median_seconds(func, rounds: int) -> float:
    func()  # warm up (allocations, cache state)
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_e10_precision_matrix(benchmark):
    """Regenerate the E10 table (golden configuration)."""
    result = benchmark.pedantic(
        lambda: e10_precision.run(
            grid=8,
            solvers=("gmres", "fgmres", "cg"),
            precisions=("fp64", "fp32", "fp32:storage=fp16"),
            preconds=("none", "jacobi"),
            faults="bitflip:p=0.05,bits=52..62",
            seed=2013,
        ),
        rounds=1, iterations=1,
    )
    report(result)
    assert result.summary["n_precisions"] == 3
    assert result.summary["n_silent_corruptions"] == 0
    # The selective-precision claim: every reduced-precision inner run
    # still reaches the fp64-accurate answer.
    assert (
        result.summary["n_lowprecision_correct"]
        >= result.summary["n_lowprecision_runs"] - 1
    )
    benchmark.extra_info["n_correct"] = result.summary["n_correct"]
    benchmark.extra_info["n_lowprecision_correct"] = result.summary[
        "n_lowprecision_correct"
    ]


def test_fp32_matvec_speedup(benchmark):
    """fp32 CSR matvec at n ~ 10^6 must beat fp64 by >= 1.5x."""
    matrix64 = poisson_2d(_MATVEC_GRID)
    matrix32 = cast_operator(matrix64, parse_precision("fp32"))
    rng = np.random.default_rng(7)
    x64 = rng.standard_normal(matrix64.shape[0])
    x32 = x64.astype(np.float32)

    fp64_seconds = _median_seconds(lambda: matrix64.matvec(x64), rounds=7)
    benchmark.pedantic(lambda: matrix32.matvec(x32), rounds=7, iterations=1)
    fp32_seconds = _median_seconds(lambda: matrix32.matvec(x32), rounds=7)
    speedup = fp64_seconds / fp32_seconds
    benchmark.extra_info["n"] = matrix64.shape[0]
    benchmark.extra_info["fp64_seconds"] = round(fp64_seconds, 6)
    benchmark.extra_info["fp32_seconds"] = round(fp32_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(
        f"\nmatvec n={matrix64.shape[0]}: fp64 {fp64_seconds * 1e3:.2f}ms "
        f"fp32 {fp32_seconds * 1e3:.2f}ms speedup {speedup:.2f}x"
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"fp32 matvec speedup {speedup:.2f}x < {_MIN_SPEEDUP}x -- the "
        f"reduced-precision kernel path is not paying for itself"
    )


def test_fp32_cgs2_speedup(benchmark):
    """fp32 CGS2 over a 30-vector basis must beat fp64 by >= 1.5x."""
    n = _CGS2_GRID * _CGS2_GRID
    rng = np.random.default_rng(7)

    def make_basis(dtype):
        basis = allocate_basis(np.zeros(n, dtype=dtype), _CGS2_BASIS + 1)
        for _ in range(_CGS2_BASIS):
            basis.append(rng.standard_normal(n).astype(dtype))
        return basis

    basis64 = make_basis(np.float64)
    basis32 = make_basis(np.float32)
    w64 = rng.standard_normal(n)
    w32 = w64.astype(np.float32)

    fp64_seconds = _median_seconds(
        lambda: basis64.orthogonalize(w64, method="cgs2"), rounds=7
    )
    benchmark.pedantic(
        lambda: basis32.orthogonalize(w32, method="cgs2"),
        rounds=7, iterations=1,
    )
    fp32_seconds = _median_seconds(
        lambda: basis32.orthogonalize(w32, method="cgs2"), rounds=7
    )
    speedup = fp64_seconds / fp32_seconds
    benchmark.extra_info["n"] = n
    benchmark.extra_info["k"] = _CGS2_BASIS
    benchmark.extra_info["fp64_seconds"] = round(fp64_seconds, 6)
    benchmark.extra_info["fp32_seconds"] = round(fp32_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    print(
        f"\ncgs2 n={n} k={_CGS2_BASIS}: fp64 {fp64_seconds * 1e3:.2f}ms "
        f"fp32 {fp32_seconds * 1e3:.2f}ms speedup {speedup:.2f}x"
    )
    assert speedup >= _MIN_SPEEDUP, (
        f"fp32 CGS2 speedup {speedup:.2f}x < {_MIN_SPEEDUP}x -- the "
        f"reduced-precision kernel path is not paying for itself"
    )
