"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists
only so that legacy (non-PEP-517) editable installs work on older
setuptools/pip combinations without network access.
"""

from setuptools import setup

setup()
